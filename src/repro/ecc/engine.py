"""BCH-style ECC engine model.

Real enterprise controllers (like the paper's Virtex-7 SSD controller) run a
hardware BCH/LDPC pipeline.  We model the externally visible behaviour:

- a **codeword layout** (data bytes + parity bytes per codeword, codewords
  per page);
- a **correction capability** ``t`` — up to ``t`` bit errors per codeword are
  corrected, more are uncorrectable;
- a **latency model**: fixed pipeline latency plus a per-corrected-bit term
  (iterative decoders slow down as error counts climb);
- an **energy model** per decoded byte.

The engine distributes a page's raw error count over its codewords with a
multinomial draw, so a page whose total errors would be correctable "on
average" can still fail when errors cluster in one codeword — the behaviour
that makes end-of-life flash reads risky.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.sim import Simulator

__all__ = ["CodewordLayout", "EccConfig", "EccEngine", "UncorrectableError", "DecodeOutcome"]


class UncorrectableError(Exception):
    """A codeword exceeded the correction capability of the code."""

    def __init__(self, codeword: int, errors: int, capability: int):
        super().__init__(
            f"codeword {codeword} has {errors} bit errors, capability is {capability}"
        )
        self.codeword = codeword
        self.errors = errors
        self.capability = capability


@dataclass(frozen=True, slots=True)
class CodewordLayout:
    """How a page is cut into codewords."""

    data_bytes: int = 2048
    parity_bytes: int = 112  # ~BCH t=40 over GF(2^14) on 2KiB

    def __post_init__(self) -> None:
        if self.data_bytes < 1 or self.parity_bytes < 0:
            raise ValueError("invalid codeword layout")

    @property
    def codeword_bytes(self) -> int:
        return self.data_bytes + self.parity_bytes

    def codewords_per_page(self, page_size: int) -> int:
        n, rem = divmod(page_size, self.data_bytes)
        if n < 1 or rem:
            raise ValueError(
                f"page size {page_size} is not a multiple of codeword data size "
                f"{self.data_bytes}"
            )
        return n


@dataclass(frozen=True, slots=True)
class EccConfig:
    """Engine parameters."""

    layout: CodewordLayout = CodewordLayout()
    capability: int = 40  # correctable bit errors per codeword
    t_decode: float = 2e-6  # fixed pipeline latency per page
    t_per_correction: float = 50e-9  # extra latency per corrected bit
    e_per_byte: float = 1e-12  # decode energy per byte
    t_encode: float = 1e-6  # parity generation per page (pipelined LFSR)
    e_encode_per_byte: float = 0.5e-12  # encode energy per byte

    def __post_init__(self) -> None:
        if self.capability < 0:
            raise ValueError("capability must be non-negative")
        if self.t_decode < 0 or self.t_per_correction < 0 or self.e_per_byte < 0:
            raise ValueError("latency/energy terms must be non-negative")
        if self.t_encode < 0 or self.e_encode_per_byte < 0:
            raise ValueError("encode terms must be non-negative")


@dataclass(frozen=True, slots=True)
class DecodeOutcome:
    """Result of decoding one page."""

    corrected_bits: int
    codewords: int
    latency: float
    energy_j: float


class EccEngine:
    """Decode-side ECC model attached to a controller.

    ``decode_page`` is a simulation process; it consumes time, charges
    energy through ``energy_sink`` if given, and raises
    :class:`UncorrectableError` when any codeword is beyond ``t``.
    """

    def __init__(
        self,
        sim: Simulator,
        config: EccConfig | None = None,
        name: str = "ecc",
        energy_sink=None,
    ):
        self.sim = sim
        self.config = config or EccConfig()
        self.name = name
        self.energy_sink = energy_sink
        self._rng = sim.rng(f"{name}.spread")
        self.pages_decoded = 0
        self.pages_encoded = 0
        self.bits_corrected = 0
        self.uncorrectable = 0
        # page_size -> codeword count; the layout is frozen so the divmod
        # (and its validation) only needs to run once per distinct size.
        self._codewords_memo: dict[int, int] = {}

    def _codewords(self, page_size: int) -> int:
        n = self._codewords_memo.get(page_size)
        if n is None:
            n = self._codewords_memo[page_size] = self.config.layout.codewords_per_page(
                page_size
            )
        return n

    def encode_page(self, page_size: int) -> Generator:
        """Generate parity for one page before programming (write path).

        Hardware LFSR pipelines make this cheap and error-free; the model
        charges the fixed pipeline latency and encode energy.
        """
        self._codewords(page_size)  # validates layout fit
        yield self.sim.timeout(self.config.t_encode)
        if self.energy_sink is not None:
            self.energy_sink(self.name, self.config.e_encode_per_byte * page_size)
        self.pages_encoded += 1
        return None

    def spread_errors(self, total_errors: int, codewords: int) -> np.ndarray:
        """Distribute a page's raw errors uniformly over its codewords."""
        if total_errors < 0 or codewords < 1:
            raise ValueError("bad error/codeword counts")
        if total_errors == 0:
            return np.zeros(codewords, dtype=np.int64)
        return self._rng.multinomial(total_errors, np.full(codewords, 1.0 / codewords))

    def decode_page(self, page_size: int, raw_bit_errors: int) -> Generator:
        """Decode one page's codewords; returns :class:`DecodeOutcome`."""
        cfg = self.config
        codewords = self._codewords(page_size)
        if raw_bit_errors == 0:
            # Fast path for the dominant error-free read: spread_errors
            # would return all zeros without touching the RNG, so latency,
            # energy and state updates below are byte-identical to the
            # general path with every per-codeword count at zero.
            yield self.sim.timeout(cfg.t_decode)
            energy = cfg.e_per_byte * page_size
            if self.energy_sink is not None:
                self.energy_sink(self.name, energy)
            self.pages_decoded += 1
            return DecodeOutcome(
                corrected_bits=0,
                codewords=codewords,
                latency=cfg.t_decode,
                energy_j=energy,
            )
        per_cw = self.spread_errors(raw_bit_errors, codewords)
        worst = int(per_cw.max()) if codewords else 0
        total = int(per_cw.sum())
        latency = cfg.t_decode + cfg.t_per_correction * total
        yield self.sim.timeout(latency)

        energy = cfg.e_per_byte * page_size
        if self.energy_sink is not None:
            self.energy_sink(self.name, energy)
        self.pages_decoded += 1

        if worst > cfg.capability:
            self.uncorrectable += 1
            bad = int(np.argmax(per_cw))
            raise UncorrectableError(bad, worst, cfg.capability)

        self.bits_corrected += total
        return DecodeOutcome(
            corrected_bits=total,
            codewords=codewords,
            latency=latency,
            energy_j=energy,
        )

    def uncorrectable_probability(self, page_size: int, rber: float) -> float:
        """Analytic per-page UECC probability at a given raw BER.

        Per codeword the error count is Binomial(n_bits, rber); the page
        fails if any codeword exceeds ``t``.  Uses a normal-tail-safe exact
        sum for the modest capabilities modelled here.
        """
        cfg = self.config
        n_bits = cfg.layout.codeword_bytes * 8
        codewords = cfg.layout.codewords_per_page(page_size)
        # P(X <= t) for X ~ Binomial(n_bits, rber), exact via scipy
        from scipy.stats import binom

        p_ok = float(binom.cdf(cfg.capability, n_bits, rber))
        return 1.0 - p_ok**codewords
