"""Work items for the parallel experiment runner.

A :class:`JobSpec` names one self-contained, seeded experiment — a claim
from :mod:`repro.analysis.validation`, a figure cell, an ablation point,
or a bench scenario.  The spec carries everything a fresh ``spawn`` worker
needs to reproduce it: an importable *target* (``"module:function"`` or
``"file:relative/path.py:function"``) plus JSON-encodable keyword
arguments.  :func:`execute_job` is the worker entry point; it restores
fresh-process ID-allocation state (:func:`repro.testing.reset_global_ids`)
before running, so a job's observable output is a pure function of
``(target, kwargs)`` no matter which process runs it or what ran earlier —
the same hermeticity contract the golden-schedule digests rely on.

Job values are canonicalised through one JSON round-trip (sorted keys,
no whitespace, NaN rejected) and hashed; the digest is how the serial and
parallel paths prove they produced bit-identical results.

This module reads the host clock (``time.perf_counter``) deliberately: the
per-job wall time it reports measures the host, not the model, and feeds
the runner's ``parallel.job.wall_seconds`` histogram.
"""

from __future__ import annotations

import hashlib
import importlib
import importlib.util
import json
import sys
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "JobResult",
    "JobSpec",
    "canonical_json",
    "execute_job",
    "payload_digest",
    "repo_root",
    "resolve_target",
]


def repo_root() -> Path:
    """The checkout root (parent of ``src``), where file: targets resolve."""
    import repro

    return Path(repro.__file__).resolve().parents[2]


def canonical_json(value: Any) -> str:
    """One canonical serialisation per value: sorted keys, no whitespace.

    ``allow_nan=False`` makes a NaN/Inf result a loud failure instead of a
    digest that silently never matches.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"), allow_nan=False)


def payload_digest(value: Any) -> str:
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One named, seeded, self-contained work item.

    ``kwargs`` must be JSON-encodable (they are part of the cache key and
    are shipped to spawn workers).  ``seed`` is advisory metadata — most
    targets take their seed through ``kwargs`` — but it participates in
    the spec digest so two otherwise-identical items stay distinct.
    """

    name: str
    target: str
    kwargs: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None

    def digest(self) -> str:
        """Content digest of the spec itself (cache-key component)."""
        return payload_digest(
            {
                "name": self.name,
                "target": self.target,
                "kwargs": self.kwargs,
                "seed": self.seed,
            }
        )


@dataclass
class JobResult:
    """What a worker returns: a canonicalised value plus its digest.

    ``error`` carries a formatted traceback instead of raising across the
    process boundary; the runner re-raises after every job has reported,
    so one bad cell cannot strand its siblings mid-flight.
    """

    name: str
    value: Any
    digest: str
    wall_seconds: float
    cached: bool = False
    error: str | None = None


def resolve_target(target: str) -> Callable[..., Any]:
    """Import the callable a target string names.

    Two forms:

    * ``"package.module:function"`` — a normal import;
    * ``"file:benchmarks/test_ablation_x.py:function"`` — loaded from a
      source file relative to the repo root, for work items (ablation
      cells) that live outside the installable package.
    """
    if target.startswith("file:"):
        _, rel, func_name = target.split(":", 2)
        path = repo_root() / rel
        if not path.exists():
            raise FileNotFoundError(f"job target file not found: {path}")
        module_name = "_repro_job_" + rel.replace("/", "_").removesuffix(".py")
        module = sys.modules.get(module_name)
        if module is None:
            spec = importlib.util.spec_from_file_location(module_name, path)
            if spec is None or spec.loader is None:
                raise ImportError(f"cannot load job target from {path}")
            module = importlib.util.module_from_spec(spec)
            sys.modules[module_name] = module
            spec.loader.exec_module(module)
        return getattr(module, func_name)
    module_name, func_name = target.rsplit(":", 1)
    return getattr(importlib.import_module(module_name), func_name)


def execute_job(spec: JobSpec) -> JobResult:
    """Run one job hermetically; never raises (errors travel in the result)."""
    from repro.testing import reset_global_ids

    reset_global_ids()
    start = time.perf_counter()
    try:
        function = resolve_target(spec.target)
        raw = function(**spec.kwargs)
        encoded = canonical_json(raw)
    except Exception:
        return JobResult(
            name=spec.name,
            value=None,
            digest="",
            wall_seconds=time.perf_counter() - start,
            error=f"job {spec.name!r} ({spec.target}):\n{traceback.format_exc()}",
        )
    # the JSON round-trip normalises containers (tuples become lists), so
    # in-process and cross-process runs return structurally identical values
    return JobResult(
        name=spec.name,
        value=json.loads(encoded),
        digest=hashlib.sha256(encoded.encode()).hexdigest(),
        wall_seconds=time.perf_counter() - start,
    )
