"""Raw bit-error-rate (RBER) model.

RBER grows with program/erase (P/E) cycling and with retention time.  We use
the standard empirical power-law-plus-exponential form

    RBER(pe, t) = rber0 * (1 + (pe / pe_rated)^alpha) * exp(t / tau)

which matches published TLC characterisation shapes closely enough for an
FTL/ECC co-design study: fresh blocks sit near ``rber0``, end-of-life blocks
(pe = pe_rated) roughly double it raised by ``alpha``, and long retention
inflates errors exponentially.

The model *samples* the number of bit errors in a codeword as a binomial
draw, so ECC behaviour (correctable vs uncorrectable) is stochastic but
deterministic under the simulator's seeded RNG streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BitErrorModel"]


@dataclass(frozen=True, slots=True)
class BitErrorModel:
    """RBER as a function of wear and retention.

    Attributes
    ----------
    rber0:
        Fresh-block, zero-retention raw bit error rate.
    pe_rated:
        Rated P/E cycles (endurance) of the media.
    alpha:
        Wear exponent; 2.0 reproduces the accelerating TLC wear-out curve.
    tau:
        Retention time constant in seconds (errors grow ~e-fold per tau).
    """

    rber0: float = 1e-6
    pe_rated: int = 3000
    alpha: float = 2.0
    tau: float = 90 * 86400.0  # 90 days

    def __post_init__(self) -> None:
        if self.rber0 <= 0 or self.rber0 >= 1:
            raise ValueError("rber0 must be in (0, 1)")
        if self.pe_rated < 1:
            raise ValueError("pe_rated must be >= 1")
        if self.alpha < 0 or self.tau <= 0:
            raise ValueError("alpha must be >= 0 and tau > 0")

    def rber(self, pe_cycles: int, retention_s: float = 0.0) -> float:
        """Raw bit error rate for a page with the given wear and retention."""
        if pe_cycles < 0 or retention_s < 0:
            raise ValueError("pe_cycles and retention_s must be non-negative")
        wear = 1.0 + (pe_cycles / self.pe_rated) ** self.alpha
        rate = self.rber0 * wear * float(np.exp(min(retention_s / self.tau, 50.0)))
        return min(rate, 0.5)

    def sample_errors(
        self,
        rng: np.random.Generator,
        nbits: int,
        pe_cycles: int,
        retention_s: float = 0.0,
    ) -> int:
        """Draw the number of raw bit errors in an ``nbits`` codeword."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        rate = self.rber(pe_cycles, retention_s)
        return int(rng.binomial(nbits, rate))

    def expected_errors(self, nbits: int, pe_cycles: int, retention_s: float = 0.0) -> float:
        """Mean error count — used by analytic (non-sampled) fast paths."""
        return nbits * self.rber(pe_cycles, retention_s)
