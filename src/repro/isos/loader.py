"""Executables and dynamic task loading.

An :class:`Executable` is the model's stand-in for an ELF binary: a named
object whose ``run(ctx)`` generator performs filesystem I/O and charges CPU
cycles through the :class:`ExecContext`.  The :class:`ExecutableRegistry` is
the OS's ``$PATH``; CompStor's **dynamic task loading** (a Query carrying an
ISC_LOAD command) installs new executables into a running device's registry.

The same executable object runs on the host and inside the SSD — only the
context differs (CPU spec, block device, ISA cost table).  That is the
paper's "no modification" porting claim, made structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Protocol, runtime_checkable

from repro.cpu.scheduler import RunQueue
from repro.isos.filesystem import ExtentFileSystem
from repro.sim import Simulator

__all__ = ["ExecContext", "Executable", "ExecutableRegistry", "ExitStatus"]


@runtime_checkable
class Executable(Protocol):
    """The binary interface: a name and a generator entry point."""

    name: str

    def run(self, ctx: "ExecContext") -> Generator: ...


@dataclass(slots=True)
class ExitStatus:
    """What an executable leaves behind."""

    code: int = 0
    stdout: bytes = b""
    detail: dict[str, Any] = field(default_factory=dict)


class ExecContext:
    """Everything a running executable may touch.

    Attributes
    ----------
    sim, fs, runq:
        Simulator, the mounted filesystem, and the sliced CPU scheduler.
    isa:
        Cost-table key for this execution environment (``"arm-a53"`` inside
        CompStor, ``"xeon"`` on the host) — see
        :mod:`repro.analysis.calibration`.
    args:
        argv[1:] for the executable.
    stdin:
        Bytes piped from the previous pipeline stage (or ``None``).
    """

    def __init__(
        self,
        sim: Simulator,
        fs: ExtentFileSystem,
        runq: RunQueue,
        isa: str,
        args: list[str] | None = None,
        stdin: bytes | None = None,
        priority: int = 0,
    ):
        self.sim = sim
        self.fs = fs
        self.runq = runq
        self.isa = isa
        self.args = args or []
        self.stdin = stdin
        self.priority = priority
        self.bytes_read = 0
        self.bytes_written = 0
        self.cycles_charged = 0.0

    def compute(self, cycles: float) -> Generator:
        """Charge CPU work (sliced, fair-shared)."""
        self.cycles_charged += cycles
        yield from self.runq.run_cycles(cycles, priority=self.priority)
        return None

    def read_file(self, name: str) -> Generator:
        data = yield from self.fs.read_file(name)
        self.bytes_read += self.fs.stat(name).size
        return data

    def write_file(self, name: str, data: bytes | None, size: int | None = None) -> Generator:
        yield from self.fs.write_file(name, data, size)
        self.bytes_written += len(data) if data is not None else (size or 0)
        return None

    def stream_pages(self, name: str) -> "PageStream":
        """Page-at-a-time reader for large scans."""
        return PageStream(self, name)


class PageStream:
    """Iterates a file's pages; each ``next_page()`` is a simulation process.

    The page index is claimed *eagerly* when ``next_page()`` is called (not
    when the returned generator first runs), so a reader may keep several
    reads in flight — the readahead that lets apps overlap IO with compute.
    """

    def __init__(self, ctx: ExecContext, name: str):
        self.ctx = ctx
        self.name = name
        self.index = 0
        self.total = ctx.fs.page_count(name)

    @property
    def exhausted(self) -> bool:
        return self.index >= self.total

    def next_page(self) -> Generator:
        """Returns ``(data_or_None, valid_len)``; raises past the end."""
        if self.exhausted:
            raise IndexError(f"stream of {self.name!r} exhausted")
        index = self.index
        self.index += 1
        return self._read(index)

    def _read(self, index: int) -> Generator:
        data, take = yield from self.ctx.fs.read_page_of(self.name, index)
        self.ctx.bytes_read += take
        return data, take


class ExecutableRegistry:
    """Named executables installed on a machine (host or CompStor)."""

    def __init__(self, preloaded: dict[str, Executable] | None = None):
        self._table: dict[str, Executable] = dict(preloaded or {})
        self.loads = 0  # dynamic loads performed at runtime

    def install(self, executable: Executable) -> None:
        """Dynamic task loading: make a new executable available."""
        if not executable.name:
            raise ValueError("executable must have a name")
        self._table[executable.name] = executable
        self.loads += 1

    def resolve(self, name: str) -> Executable:
        exe = self._table.get(name)
        if exe is None:
            raise KeyError(f"executable not found: {name!r} (installed: {sorted(self._table)})")
        return exe

    def instantiate(self, name: str) -> Executable:
        """A fresh per-execution copy of the installed prototype.

        Executables keep scan state on ``self`` (like a process keeps state
        in its address space), so concurrent invocations must not share one
        object.
        """
        import copy

        return copy.copy(self.resolve(name))

    def installed(self) -> list[str]:
        return sorted(self._table)

    def __contains__(self, name: str) -> bool:
        return name in self._table

    def clone(self) -> "ExecutableRegistry":
        """Independent copy (each device gets its own registry)."""
        fresh = ExecutableRegistry(dict(self._table))
        fresh.loads = 0
        return fresh
