"""Ordinary shell utilities.

These exist to back the paper's claim that a Linux-powered drive runs *any*
shell command in place: echo, cat, ls, wc, sha1sum.  They share the same
streaming/cost machinery as the headline workloads.
"""

from __future__ import annotations

import hashlib
from typing import Generator

from repro.apps.base import StreamingApp, charge
from repro.isos.loader import ExecContext, ExitStatus

__all__ = ["CatApp", "EchoApp", "LsApp", "Sha1SumApp", "WcApp"]


class EchoApp:
    """``echo ARGS...`` — also consumes stdin if piped (pass-through)."""

    name = "echo"

    def run(self, ctx: ExecContext) -> Generator:
        out = " ".join(ctx.args).encode()
        yield from charge(ctx, self.name, len(out))
        return ExitStatus(code=0, stdout=out)


class LsApp:
    """``ls`` — list the filesystem namespace with sizes."""

    name = "ls"

    def run(self, ctx: ExecContext) -> Generator:
        rows = [f"{ctx.fs.stat(name).size:>12} {name}" for name in ctx.fs.listdir()]
        out = "\n".join(rows).encode()
        yield from charge(ctx, self.name, len(out))
        return ExitStatus(code=0, stdout=out, detail={"entries": len(rows)})


class CatApp(StreamingApp):
    """``cat FILE`` — stream a file to stdout."""

    name = "cat"

    def begin(self, ctx: ExecContext) -> None:
        self._chunks: list[bytes] = []
        self._analytic = False

    def consume(self, ctx: ExecContext, chunk: bytes | None, take: int) -> None:
        if chunk is None:
            self._analytic = True
        else:
            self._chunks.append(chunk)

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        stdout = b"" if self._analytic else b"".join(self._chunks)
        return ExitStatus(code=0, stdout=stdout, detail={"bytes": total_bytes})
        yield  # pragma: no cover - generator protocol


class WcApp(StreamingApp):
    """``wc FILE`` — line/word/byte counts."""

    name = "wc"

    def begin(self, ctx: ExecContext) -> None:
        self.lines = 0
        self.words = 0
        self._in_word = False
        self._analytic = False

    def consume(self, ctx: ExecContext, chunk: bytes | None, take: int) -> None:
        if chunk is None:
            self._analytic = True
            return
        self.lines += chunk.count(b"\n")
        # word counting across chunk boundaries
        for byte in chunk:
            space = byte in (0x20, 0x09, 0x0A, 0x0D)
            if not space and not self._in_word:
                self.words += 1
                self._in_word = True
            elif space:
                self._in_word = False

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        if self._analytic:
            return ExitStatus(code=0, stdout=b"", detail={"bytes": total_bytes})
        out = f"{self.lines} {self.words} {total_bytes} {path}"
        return ExitStatus(
            code=0,
            stdout=out.encode(),
            detail={"lines": self.lines, "words": self.words, "bytes": total_bytes},
        )
        yield  # pragma: no cover - generator protocol


class Sha1SumApp(StreamingApp):
    """``sha1sum FILE`` — integrity digests (a common datacenter scan)."""

    name = "sha1sum"

    def begin(self, ctx: ExecContext) -> None:
        self._digest = hashlib.sha1()
        self._analytic = False

    def consume(self, ctx: ExecContext, chunk: bytes | None, take: int) -> None:
        if chunk is None:
            self._analytic = True
        else:
            self._digest.update(chunk)

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        if self._analytic:
            # No payload flowed, so there is no digest to print.  The marker
            # lets scorecards tell "analytic skip" from "empty file" (both
            # produce empty stdout).
            return ExitStatus(
                code=0, stdout=b"", detail={"analytic": True, "bytes": total_bytes}
            )
        out = f"{self._digest.hexdigest()}  {path}"
        return ExitStatus(code=0, stdout=out.encode(), detail={"bytes": total_bytes})
        yield  # pragma: no cover - generator protocol
