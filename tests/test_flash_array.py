"""Unit tests for the behavioural flash array model."""

import pytest

from repro.flash import (
    BitErrorModel,
    FlashArray,
    FlashGeometry,
    FlashOpError,
    FlashTiming,
    PageAddress,
    PageState,
)
from repro.flash.geometry import BlockAddress
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=2, planes_per_die=1, blocks_per_plane=4, pages_per_block=4,
    page_size=4096,
)


def make_array(sim, **kw):
    kw.setdefault("geometry", GEO)
    kw.setdefault("error_model", BitErrorModel(rber0=1e-9))
    return FlashArray(sim, **kw)


def run(sim, gen):
    return sim.run(sim.process(gen))


def test_program_then_read_returns_data():
    sim = Simulator()
    arr = make_array(sim)
    addr = PageAddress(0, 0, 0, 0, 0)

    def flow():
        yield from arr.program_page(addr, b"hello world")
        result = yield from arr.read_page(addr)
        return result

    result = run(sim, flow())
    assert result.data == b"hello world"
    assert result.address == addr
    assert arr.stats.programs == 1
    assert arr.stats.reads == 1


def test_program_timing_includes_transfer_and_tprog():
    sim = Simulator()
    timing = FlashTiming()
    arr = make_array(sim, timing=timing)
    addr = PageAddress(0, 0, 0, 0, 0)

    def flow():
        yield from arr.program_page(addr, b"x")

    run(sim, flow())
    expected = timing.transfer_time(GEO.page_size) + timing.t_prog
    assert sim.now == pytest.approx(expected)


def test_read_timing_includes_tread_and_transfer():
    sim = Simulator()
    timing = FlashTiming()
    arr = make_array(sim, timing=timing)
    addr = PageAddress(0, 0, 0, 0, 0)

    def flow():
        yield from arr.program_page(addr, b"x")
        start = sim.now
        yield from arr.read_page(addr)
        return sim.now - start

    elapsed = run(sim, flow())
    assert elapsed == pytest.approx(timing.t_read + timing.transfer_time(GEO.page_size))


def test_read_erased_page_is_protocol_error():
    sim = Simulator()
    arr = make_array(sim)

    def flow():
        yield from arr.read_page(PageAddress(0, 0, 0, 0, 0))

    with pytest.raises(FlashOpError, match="erased"):
        run(sim, flow())


def test_reprogram_without_erase_rejected():
    sim = Simulator()
    arr = make_array(sim)
    addr = PageAddress(0, 0, 0, 0, 0)

    def flow():
        yield from arr.program_page(addr, b"a")
        yield from arr.program_page(addr, b"b")

    with pytest.raises(FlashOpError, match="already-programmed"):
        run(sim, flow())


def test_out_of_order_program_rejected():
    sim = Simulator()
    arr = make_array(sim)

    def flow():
        yield from arr.program_page(PageAddress(0, 0, 0, 0, 2), b"skip")

    with pytest.raises(FlashOpError, match="out-of-order"):
        run(sim, flow())


def test_oversize_payload_rejected():
    sim = Simulator()
    arr = make_array(sim)

    def flow():
        yield from arr.program_page(PageAddress(0, 0, 0, 0, 0), b"z" * (GEO.page_size + 1))

    with pytest.raises(FlashOpError, match="exceeds page size"):
        run(sim, flow())


def test_erase_resets_block_and_increments_pe():
    sim = Simulator()
    arr = make_array(sim)
    block = BlockAddress(0, 0, 0, 0)

    def flow():
        for page in range(GEO.pages_per_block):
            yield from arr.program_page(block.page(page), b"d")
        assert arr.erased_pages_in(block) == 0
        yield from arr.erase_block(block)

    run(sim, flow())
    assert arr.erased_pages_in(block) == GEO.pages_per_block
    assert arr.pe_count(block) == 1
    assert arr.page_state_of(block.page(0)) == PageState.ERASED


def test_erase_allows_reprogram_from_page_zero():
    sim = Simulator()
    arr = make_array(sim)
    block = BlockAddress(0, 0, 0, 0)

    def flow():
        yield from arr.program_page(block.page(0), b"first")
        yield from arr.erase_block(block)
        yield from arr.program_page(block.page(0), b"second")
        result = yield from arr.read_page(block.page(0))
        return result

    assert run(sim, flow()).data == b"second"


def test_erase_drops_stored_data():
    sim = Simulator()
    arr = make_array(sim)
    block = BlockAddress(0, 0, 0, 0)

    def flow():
        yield from arr.program_page(block.page(0), b"gone")
        yield from arr.erase_block(block)

    run(sim, flow())
    assert arr._data == {}


def test_channel_bus_serializes_same_channel_dies():
    """Two programs on different dies of one channel contend for the bus;
    on different channels they proceed in parallel."""
    sim = Simulator()
    timing = FlashTiming()
    arr = make_array(sim, timing=timing)

    def program(addr):
        yield from arr.program_page(addr, b"x")

    # same channel, two dies
    sim.process(program(PageAddress(0, 0, 0, 0, 0)))
    sim.process(program(PageAddress(0, 1, 0, 0, 0)))
    sim.run()
    same_channel = sim.now

    sim2 = Simulator()
    arr2 = make_array(sim2, timing=timing)
    sim2.process(program_on(arr2, PageAddress(0, 0, 0, 0, 0)))
    sim2.process(program_on(arr2, PageAddress(1, 0, 0, 0, 0)))
    sim2.run()
    cross_channel = sim2.now

    xfer = timing.transfer_time(GEO.page_size)
    assert same_channel == pytest.approx(2 * xfer + timing.t_prog)
    assert cross_channel == pytest.approx(xfer + timing.t_prog)


def program_on(arr, addr):
    yield from arr.program_page(addr, b"x")


def test_die_serializes_operations():
    """Two reads on one die serialize the tR phases."""
    sim = Simulator()
    timing = FlashTiming()
    arr = make_array(sim, timing=timing)
    block = BlockAddress(0, 0, 0, 0)

    def setup_and_read():
        yield from arr.program_page(block.page(0), b"a")
        yield from arr.program_page(block.page(1), b"b")
        t0 = sim.now
        p1 = sim.process(read_on(arr, block.page(0)))
        p2 = sim.process(read_on(arr, block.page(1)))
        yield sim.all_of([p1, p2])
        return sim.now - t0

    elapsed = sim.run(sim.process(setup_and_read()))
    xfer = timing.transfer_time(GEO.page_size)
    # second read's tR starts only after the first releases the die
    assert elapsed == pytest.approx(2 * timing.t_read + xfer)


def read_on(arr, addr):
    result = yield from arr.read_page(addr)
    return result


def test_wear_increases_error_rate():
    model = BitErrorModel(rber0=1e-6, pe_rated=100)
    fresh = model.rber(0)
    worn = model.rber(100)
    dead = model.rber(300)
    assert fresh < worn < dead
    assert worn == pytest.approx(2 * fresh)  # alpha=2 at rated cycles doubles


def test_retention_increases_error_rate():
    model = BitErrorModel()
    assert model.rber(0, retention_s=0) < model.rber(0, retention_s=model.tau)


def test_rber_capped_at_half():
    model = BitErrorModel(rber0=1e-2, pe_rated=10, alpha=4.0)
    assert model.rber(10_000, retention_s=model.tau * 100) == 0.5


def test_error_sampling_deterministic_per_seed():
    import numpy as np

    model = BitErrorModel(rber0=1e-3)
    a = model.sample_errors(np.random.default_rng(1), nbits=10_000, pe_cycles=0)
    b = model.sample_errors(np.random.default_rng(1), nbits=10_000, pe_cycles=0)
    assert a == b


def test_energy_accounting_positive_and_sinked():
    sim = Simulator()
    charged = []
    arr = make_array(sim, energy_sink=lambda name, j: charged.append((name, j)))
    block = BlockAddress(0, 0, 0, 0)

    def flow():
        yield from arr.program_page(block.page(0), b"x")
        yield from arr.read_page(block.page(0))
        yield from arr.erase_block(block)

    run(sim, flow())
    assert arr.stats.energy_j > 0
    assert sum(j for _, j in charged) == pytest.approx(arr.stats.energy_j)


def test_aggregate_bandwidth_matches_paper_math():
    """16 channels x 533 MB/s ~= 8.5 GB/s per SSD (paper Fig. 1)."""
    sim = Simulator()
    arr = FlashArray(sim)  # default geometry/timing
    assert arr.aggregate_bandwidth == pytest.approx(16 * 533e6)


def test_analytic_mode_stores_no_data():
    sim = Simulator()
    arr = make_array(sim, store_data=False)
    addr = PageAddress(0, 0, 0, 0, 0)

    def flow():
        yield from arr.program_page(addr, b"payload")
        result = yield from arr.read_page(addr)
        return result

    result = run(sim, flow())
    assert result.data is None
    assert arr._data == {}
