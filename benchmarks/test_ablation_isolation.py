"""Ablation — dedicated ISPS vs shared controller cores.

DESIGN.md decision under test: CompStor's isolation is architectural (its
own cluster), so storage latency must not degrade while computation runs;
a Biscuit-style device that shares cores between firmware and ISC shows the
degradation the paper's Table I predicts.
"""

import numpy as np

from repro.analysis.experiments import format_series_table
from repro.baselines import BiscuitSSD
from repro.host import InSituClient
from repro.nvme import NvmeCommand, Opcode
from repro.sim import Simulator
from repro.ssd import CompStorSSD
from repro.ssd.conventional import small_geometry

CAPACITY = 16 * 1024 * 1024


def probe_latencies(make_ssd, devname, with_compute):
    sim = Simulator(seed=23)
    ssd = make_ssd(sim)
    client = InSituClient(sim)
    client.attach(ssd.controller)
    cores = ssd.isps.cluster.spec.cores
    probe_lpns = range(ssd.ftl.logical_pages - 12, ssd.ftl.logical_pages)

    def setup():
        for i in range(cores):
            yield from ssd.fs.write_file(f"big{i}.txt", b"fox word line\n" * 20000)
        for lpn in probe_lpns:
            yield from ssd.ftl.write(lpn, b"io")
        yield from ssd.ftl.flush()

    sim.run(sim.process(setup()))
    latencies = []

    def measure():
        compute = []
        if with_compute:
            compute = [
                sim.process(client.run(devname, f"grep fox big{i}.txt"))
                for i in range(cores)
            ]
            yield sim.timeout(4e-3)
        qp = ssd.controller.queue(0)
        for lpn in probe_lpns:
            completion = yield from qp.call(NvmeCommand(opcode=Opcode.READ, slba=lpn))
            latencies.append(completion.latency)
            yield sim.timeout(4e-4)
        if compute:
            yield sim.all_of(compute)

    sim.run(sim.process(measure()))
    return float(np.median(latencies))


def test_ablation_isolation(benchmark):
    def experiment():
        compstor = lambda sim: CompStorSSD(sim, geometry=small_geometry(CAPACITY))
        biscuit = lambda sim: BiscuitSSD(sim, geometry=small_geometry(CAPACITY))
        return {
            ("CompStor", "idle"): probe_latencies(compstor, "compstor", False),
            ("CompStor", "computing"): probe_latencies(compstor, "compstor", True),
            ("Biscuit", "idle"): probe_latencies(biscuit, "biscuit", False),
            ("Biscuit", "computing"): probe_latencies(biscuit, "biscuit", True),
        }

    lat = benchmark.pedantic(experiment, rounds=1, iterations=1)

    compstor_hit = lat[("CompStor", "computing")] / lat[("CompStor", "idle")]
    biscuit_hit = lat[("Biscuit", "computing")] / lat[("Biscuit", "idle")]
    print("\n" + format_series_table(
        "Ablation — median read latency (us) idle vs under full ISC load",
        ["device", "idle", "computing", "slowdown"],
        [
            ["CompStor (dedicated ISPS)", lat[("CompStor", "idle")] * 1e6,
             lat[("CompStor", "computing")] * 1e6, compstor_hit],
            ["Biscuit (shared cores)", lat[("Biscuit", "idle")] * 1e6,
             lat[("Biscuit", "computing")] * 1e6, biscuit_hit],
        ],
    ))

    # CompStor: storage is essentially unaffected (allow flash-channel noise)
    assert compstor_hit < 1.5
    # Biscuit: compute visibly degrades storage
    assert biscuit_hit > 2.0
    assert biscuit_hit > 2.0 * compstor_hit
