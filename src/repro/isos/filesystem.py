"""A small extent filesystem over a block device.

Flat namespace, page-granular allocation, in-memory metadata with explicit
persistence to a reserved metadata region.  It supports the two access
patterns the paper's workloads need: whole-file reads/writes and streamed
page-sized chunks (so multi-gigabyte scans don't materialise in memory).

Functional vs analytic mode follows the device: when the underlying device
stores no payloads, reads return ``None`` chunks but all sizes, offsets and
timings stay exact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Generator, Iterable

from repro.isos.blockdev import BlockDevice
from repro.sim import Simulator

__all__ = ["ExtentFileSystem", "FsError", "Inode"]

#: Pages reserved at the front of the device for the superblock + file table.
DEFAULT_META_PAGES = 4


class FsError(Exception):
    """Filesystem-level failure (missing file, no space, bad name, ...)."""


@dataclass(slots=True)
class Inode:
    """Metadata for one file."""

    name: str
    size: int = 0
    pages: list[int] = field(default_factory=list)
    mtime: float = 0.0

    def to_json(self) -> dict:
        return {"name": self.name, "size": self.size, "pages": self.pages, "mtime": self.mtime}

    @classmethod
    def from_json(cls, obj: dict) -> "Inode":
        return cls(name=obj["name"], size=obj["size"], pages=list(obj["pages"]), mtime=obj["mtime"])


class ExtentFileSystem:
    """Flat-namespace filesystem.

    All mutating and reading entry points are simulation processes (they
    perform device I/O); purely structural queries (``exists``, ``stat``,
    ``listdir``) are synchronous.
    """

    def __init__(self, sim: Simulator, device: BlockDevice, meta_pages: int = DEFAULT_META_PAGES):
        if meta_pages < 1 or meta_pages >= device.pages:
            raise ValueError("meta_pages must be in [1, device.pages)")
        self.sim = sim
        self.device = device
        self.meta_pages = meta_pages
        self.files: dict[str, Inode] = {}
        self._free: list[int] = list(range(device.pages - 1, meta_pages - 1, -1))

    # -- capacity -----------------------------------------------------------
    @property
    def page_size(self) -> int:
        return self.device.page_size

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def free_bytes(self) -> int:
        return self.free_pages * self.page_size

    def _pages_needed(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.page_size)) if nbytes else 0

    # -- structural queries ----------------------------------------------------
    def exists(self, name: str) -> bool:
        return name in self.files

    def stat(self, name: str) -> Inode:
        inode = self.files.get(name)
        if inode is None:
            raise FsError(f"no such file: {name!r}")
        return inode

    def listdir(self) -> list[str]:
        return sorted(self.files)

    def total_bytes_used(self) -> int:
        return sum(inode.size for inode in self.files.values())

    # -- mutation ------------------------------------------------------------
    @staticmethod
    def _check_name(name: str) -> None:
        if not name or "/" in name or "\x00" in name:
            raise FsError(f"invalid file name {name!r}")

    def write_file(self, name: str, data: bytes | None, size: int | None = None) -> Generator:
        """Create or replace ``name``.

        ``data=None`` with an explicit ``size`` is analytic mode: space is
        allocated and device writes happen, but no payload is stored.
        """
        self._check_name(name)
        if data is not None:
            size = len(data)
        if size is None:
            raise FsError("write_file needs data or an explicit size")
        if size < 0:
            raise FsError("size must be non-negative")
        needed = self._pages_needed(size)
        old = self.files.get(name)
        reusable = len(old.pages) if old else 0
        if needed - reusable > self.free_pages:
            raise FsError(
                f"no space for {name!r}: need {needed} pages, "
                f"{self.free_pages + reusable} available"
            )
        if old is not None:
            yield from self._release(old)
        inode = Inode(name=name, size=size, mtime=self.sim.now)
        for i in range(needed):
            lpn = self._free.pop()
            chunk = None
            if data is not None:
                chunk = data[i * self.page_size : (i + 1) * self.page_size]
            yield from self.device.write(lpn, chunk)
            inode.pages.append(lpn)
        self.files[name] = inode
        return inode

    def append(self, name: str, data: bytes | None, size: int | None = None) -> Generator:
        """Append to an existing (or new) file."""
        if data is not None:
            size = len(data)
        if size is None:
            raise FsError("append needs data or an explicit size")
        if name not in self.files:
            result = yield from self.write_file(name, data, size)
            return result
        inode = self.files[name]
        # Appends are page-aligned (the tail page is not repacked): the
        # existing content is padded with zeros to the next page boundary,
        # so byte i of a file always lives at page i // page_size.  A
        # general-purpose FS would read-modify-write the tail page instead.
        needed = self._pages_needed(size)
        if needed > self.free_pages:
            raise FsError(f"no space to append {needed} pages to {name!r}")
        aligned = len(inode.pages) * self.page_size
        for i in range(needed):
            lpn = self._free.pop()
            chunk = None
            if data is not None:
                chunk = data[i * self.page_size : (i + 1) * self.page_size]
            yield from self.device.write(lpn, chunk)
            inode.pages.append(lpn)
        inode.size = aligned + size
        inode.mtime = self.sim.now
        return inode

    def delete(self, name: str) -> Generator:
        inode = self.files.pop(name, None)
        if inode is None:
            raise FsError(f"no such file: {name!r}")
        yield from self._release(inode)
        return None

    def _release(self, inode: Inode) -> Generator:
        if inode.pages:
            yield from self.device.trim(list(inode.pages))
            self._free.extend(reversed(inode.pages))
        inode.pages = []
        return None

    # -- reads ----------------------------------------------------------------
    def _pad(self, chunk: bytes) -> bytes:
        """Short device chunks read back zero-padded to a full page, so the
        byte-to-page mapping stays positional."""
        if len(chunk) < self.page_size:
            return chunk.ljust(self.page_size, b"\0")
        return chunk

    def read_file(self, name: str) -> Generator:
        """Whole-file read; returns bytes (or ``None`` in analytic mode)."""
        inode = self.stat(name)
        chunks: list[bytes] = []
        analytic = False
        for lpn in inode.pages:
            chunk = yield from self.device.read(lpn)
            if chunk is None:
                analytic = True
            else:
                chunks.append(self._pad(chunk))
        if analytic:
            return None
        return b"".join(chunks)[: inode.size]

    def stream_file(self, name: str) -> Generator:
        """Yield ``(chunk_bytes_or_None, chunk_len)`` page by page.

        This is itself a simulation process; callers iterate by repeatedly
        delegating with ``yield from`` on :meth:`read_page_of`.  For
        convenience the whole stream is returned as a list when delegated
        to directly — large-scan apps should use :meth:`read_page_of`.
        """
        inode = self.stat(name)
        out = []
        remaining = inode.size
        for lpn in inode.pages:
            chunk = yield from self.device.read(lpn)
            take = min(self.page_size, remaining)
            if chunk is not None:
                chunk = self._pad(chunk)[:take]
            out.append((chunk, take))
            remaining -= take
        return out

    def read_page_of(self, name: str, index: int) -> Generator:
        """Read the ``index``-th page of a file; returns (data, valid_len)."""
        inode = self.stat(name)
        if not 0 <= index < len(inode.pages):
            raise FsError(f"page {index} out of range for {name!r}")
        chunk = yield from self.device.read(inode.pages[index])
        start = index * self.page_size
        take = min(self.page_size, inode.size - start)
        if chunk is not None:
            chunk = self._pad(chunk)[:take]
        return chunk, take

    def page_count(self, name: str) -> int:
        return len(self.stat(name).pages)

    # -- persistence ---------------------------------------------------------
    def persist(self) -> Generator:
        """Serialise the file table into the metadata region."""
        blob = json.dumps(
            {"files": [inode.to_json() for inode in self.files.values()]}
        ).encode()
        capacity = self.meta_pages * self.page_size
        if len(blob) > capacity:
            raise FsError(
                f"metadata ({len(blob)}B) exceeds reserved region ({capacity}B); "
                "raise meta_pages"
            )
        for i in range(self.meta_pages):
            chunk = blob[i * self.page_size : (i + 1) * self.page_size]
            yield from self.device.write(i, chunk or b"\0")
        yield from self.device.flush()
        return None

    def load(self) -> Generator:
        """Rebuild the file table from the metadata region (after 'reboot')."""
        chunks = []
        for i in range(self.meta_pages):
            chunk = yield from self.device.read(i)
            # an unwritten metadata page reads back empty (fresh device, or
            # metadata never persisted before the power cut); analytic-mode
            # devices land here too and simply load an empty namespace
            chunks.append(chunk if chunk is not None else b"")
        blob = b"".join(chunks).rstrip(b"\0")
        table = json.loads(blob.decode()) if blob else {"files": []}
        self.files = {obj["name"]: Inode.from_json(obj) for obj in table["files"]}
        used = {lpn for inode in self.files.values() for lpn in inode.pages}
        self._free = [
            lpn
            for lpn in range(self.device.pages - 1, self.meta_pages - 1, -1)
            if lpn not in used
        ]
        return None

    # -- bulk helpers -----------------------------------------------------------
    def import_files(self, items: Iterable[tuple[str, bytes | None, int]]) -> Generator:
        """Stage many ``(name, data, size)`` files (dataset loading)."""
        for name, data, size in items:
            yield from self.write_file(name, data, size)
        return None
