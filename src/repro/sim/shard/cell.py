"""One device shard: a single-CompStor node behind a message gateway.

A :class:`DeviceCell` owns ring position ``i`` of the fleet's device ring:
one CompStor SSD (with its FTL/ECC/NVMe consumers and a dedicated PCIe
endpoint), a host-side :class:`~repro.host.insitu.InSituClient` acting as
the gateway's delivery arm (retries and breakers included), and a private
:class:`~repro.sim.Simulator` seeded from the scenario seed and the ring
position — so a cell's entire schedule is a pure function of the scenario,
independent of which shard group or OS process runs it.

The gateway understands two request kinds from the host domain:

- ``minion`` — build the :class:`~repro.proto.entities.Command`, ship it
  through the in-situ client, and answer with a compact result record (or
  the delivery failure, which the host's failover ladder acts on);
- ``status`` — the administrative telemetry round trip, answered as a
  canonical string so scorecards can digest it without schema coupling.

Model difference vs the monolithic simulator, by design: each cell has a
*dedicated* fabric uplink instead of sharing one PCIe switch with its node
neighbours, and client-side RNG/ID streams are cell-local.  Sharded runs
are therefore compared against the sharded ``shards=1`` oracle, never
against the legacy single-simulator goldens (see DESIGN.md §14).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Generator, Sequence

from repro.config.schema import ScenarioConfig
from repro.sim.core import Simulator
from repro.sim.shard.protocol import ShardMessage, SimDomain
from repro.sim.shard.scopes import IdScope
from repro.sim.trace import Tracer

__all__ = ["DeviceCell"]

#: Offset between per-cell master seeds; coprime to everything in sight so
#: consecutive cells never share named RNG streams.
SEED_STRIDE = 65_537


class DeviceCell(SimDomain):
    """Ring position ``ring_index`` of the scenario's device ring."""

    def __init__(
        self,
        config: ScenarioConfig,
        ring: Sequence[tuple[int, str]],
        ring_index: int,
        reply_latency: float,
        trace: bool = True,
    ):
        self.config = config
        self.ring = list(ring)
        self.ring_index = ring_index
        self.node_index, self.device = self.ring[ring_index]
        sim = Simulator(seed=config.seed * SEED_STRIDE + ring_index)
        super().__init__(f"cell{ring_index}", sim, reply_latency)
        self.scope = IdScope()
        self.tracer = Tracer() if trace else None
        self.staged: list[str] = []
        self.injector = None
        with self.scope.active():
            cell_config = replace(
                config,
                fleet=replace(
                    config.fleet,
                    nodes=1,
                    devices_per_node=1,
                    with_baseline_ssd=False,
                    replicas=1,
                ),
            )
            from repro.config.factory import build_node

            self.node = build_node(
                cell_config, sim, tracer=self.tracer, device_names=(self.device,)
            )
        self.ssd = self.node.compstors[0]
        self.client = self.node.client

    # -- lifecycle ------------------------------------------------------------
    def stage(self, books: Sequence, compressed: bool = False) -> float:
        """Write this cell's share of the corpus (primaries then replica
        copies, fleet placement order) and drain to quiescence; returns the
        local staging-completion time."""
        from repro.cluster.node import StorageNode

        self.staged = [book.name for book in books]
        with self.scope.active():
            self.sim.process(
                StorageNode._stage_books(self.ssd.fs, list(books), compressed),
                name=f"stage->{self.device}",
            )
            self.sim.run()
        return self.sim.now

    def align(self, base: float) -> None:
        """Advance the local clock to the fleet-wide staging barrier."""
        with self.scope.active():
            self.sim.run(until=base)

    def arm_faults(self, plan) -> None:
        """Arm the scenario's fault events that target this device.

        ``plan`` is the *full-ring* plan built at the staging barrier; the
        cell filters it to its own ``(node_index, device)`` target so stream
        names (``faults.n{node}.{device}``) match the fleet-wide convention.
        """
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan

        mine = FaultPlan(seed=plan.seed)
        for event in plan.events():
            if event.target == (self.node_index, self.device):
                mine.add(event)
        if not mine.events():
            return
        with self.scope.active():
            self.injector = FaultInjector.for_node(
                self.node, mine, node_index=self.node_index, tracer=self.tracer
            )
            self.injector.start()

    def run_segment(self, horizon: float) -> int:
        with self.scope.active():
            return super().run_segment(horizon)

    # -- gateway --------------------------------------------------------------
    def _on_message(self, message: ShardMessage) -> None:
        handler = {"minion": self._serve_minion, "status": self._serve_status}[
            message.kind
        ]
        self.sim.process(
            handler(message.payload), name=f"gateway.{message.kind}"
        )

    def _serve_minion(self, payload: dict) -> Generator:
        import zlib

        from repro.host.insitu import InSituError
        from repro.proto.entities import Command

        command = Command(
            command_line=payload.get("command_line", ""),
            script=payload.get("script", ""),
        )
        try:
            minion = yield from self.client.send_minion(self.device, command)
            response = minion.response
            result = {
                "status": response.status.value,
                "exit_code": response.exit_code,
                "stdout_bytes": len(response.stdout),
                "stdout_crc": zlib.crc32(response.stdout),
                "execution_seconds": response.execution_seconds,
                "device": f"n{self.node_index}.{self.device}",
            }
        except InSituError as exc:
            result = {"error": type(exc).__name__, "detail": str(exc)}
        self.send(
            "host",
            "response",
            {"request_id": payload["request_id"], "result": result},
        )

    def _serve_status(self, payload: dict) -> Generator:
        from repro.host.insitu import InSituError
        from repro.testing import canonical_value

        try:
            reply = yield from self.client.status(self.device)
            result = {"snapshot": canonical_value(reply)}
        except InSituError as exc:
            result = {"error": type(exc).__name__, "detail": str(exc)}
        self.send(
            "host",
            "response",
            {"request_id": payload["request_id"], "result": result},
        )

    # -- reporting ------------------------------------------------------------
    def fingerprint(self) -> dict:
        """The cell's contribution to the run's equivalence digest."""
        from repro.testing import schedule_digest

        extras = {
            "cell": self.name,
            "target": f"n{self.node_index}.{self.device}",
            "staged": list(self.staged),
            "events": self.sim.events_processed,
            "minions_served": self.ssd.agent.minions_served,
            "finished_at": self.sim.now,
            "sent": self.sent,
            "received": self.received,
        }
        if self.injector is not None:
            extras["recoveries"] = self.injector.recovery_counts()
        digest = (
            schedule_digest(self.tracer, extras=extras)
            if self.tracer is not None
            else None
        )
        return {
            "cell": self.name,
            "target": f"n{self.node_index}.{self.device}",
            "events": self.sim.events_processed,
            "minions_served": self.ssd.agent.minions_served,
            "schedule_digest": digest,
        }
