"""Unit tests for the parallel experiment runner.

The pool-backed paths (``workers > 1``) really spawn worker processes, so
they are kept to small, cheap selftest targets; the heavyweight proof that
real experiments are serial/parallel bit-identical lives in
``tests/test_parallel_equivalence.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.parallel import (
    JobError,
    JobSpec,
    ResultCache,
    canonical_json,
    code_digest,
    execute_job,
    payload_digest,
    run_jobs,
)
from repro.obs import MetricsRegistry


def ping_spec(value, name="ping"):
    return JobSpec(name=name, target="repro.parallel.selftest:ping",
                   kwargs={"value": value})


def stream_spec(seed, length=6, name=None):
    return JobSpec(
        name=name or f"stream{seed}",
        target="repro.parallel.selftest:digest_stream",
        kwargs={"seed": seed, "length": length},
        seed=seed,
    )


# -- specs and digests --------------------------------------------------------

def test_spec_digest_covers_every_field():
    base = JobSpec(name="a", target="m:f", kwargs={"x": 1}, seed=7)
    assert base.digest() == JobSpec("a", "m:f", {"x": 1}, 7).digest()
    for other in (
        JobSpec("b", "m:f", {"x": 1}, 7),
        JobSpec("a", "m:g", {"x": 1}, 7),
        JobSpec("a", "m:f", {"x": 2}, 7),
        JobSpec("a", "m:f", {"x": 1}, 8),
    ):
        assert other.digest() != base.digest()


def test_canonical_json_is_key_order_independent():
    assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'
    assert payload_digest({"b": 1, "a": 2}) == payload_digest({"a": 2, "b": 1})


def test_canonical_json_rejects_nan():
    with pytest.raises(ValueError):
        canonical_json({"x": float("nan")})


def test_execute_job_normalises_tuples_to_lists():
    spec = JobSpec(name="echo", target="repro.parallel.selftest:echo",
                   kwargs={"value": (1, 2, "three")})
    result = execute_job(spec)
    assert result.error is None
    assert result.value == {"pong": [1, 2, "three"]}
    assert result.digest == payload_digest(result.value)


def test_execute_job_clears_compress_blob_cache():
    """Regression: the module-level payload memo in ``repro.apps.compress``
    survived from one pool-worker job to the next, so a long matrix run
    grew worker memory without bound and let warm-cache timing leak across
    supposedly hermetic cells."""
    from repro.apps import compress

    compress._BLOB_CACHE[("gzip", b"sentinel")] = b"stale"
    result = execute_job(ping_spec(1))
    assert result.error is None
    assert compress._BLOB_CACHE == {}


def test_execute_job_captures_traceback_instead_of_raising():
    spec = JobSpec(name="kaboom", target="repro.parallel.selftest:boom",
                   kwargs={"message": "planned failure"})
    result = execute_job(spec)
    assert result.value is None
    assert result.error is not None
    assert "planned failure" in result.error
    assert "kaboom" in result.error


def test_file_target_resolves_relative_to_repo_root():
    spec = JobSpec(
        name="ablation-smoke",
        target="file:benchmarks/test_ablation_selectivity.py:run_density",
        kwargs={"needle_rate": 0.0},
    )
    result = execute_job(spec)
    assert result.error is None, result.error
    assert result.value["needle_rate"] == 0.0
    assert result.value["emitted"] == 0


# -- the runner ---------------------------------------------------------------

def test_run_jobs_returns_canonical_order_serial_and_parallel():
    specs = [stream_spec(seed) for seed in (5, 3, 9, 1)]
    serial = run_jobs(specs, workers=1)
    parallel = run_jobs(specs, workers=4)
    assert [r.name for r in serial.results] == [s.name for s in specs]
    assert serial.digests() == parallel.digests()
    assert serial.values() == parallel.values()
    assert serial.executed == parallel.executed == 4


def test_run_jobs_rejects_duplicate_names_and_bad_workers():
    with pytest.raises(ValueError, match="unique"):
        run_jobs([ping_spec(1), ping_spec(2)])
    with pytest.raises(ValueError, match="workers"):
        run_jobs([ping_spec(1)], workers=0)


def test_run_jobs_raises_job_error_after_all_jobs_report():
    specs = [
        ping_spec(1, name="ok1"),
        JobSpec(name="bad", target="repro.parallel.selftest:boom",
                kwargs={"message": "boom-1"}),
        ping_spec(2, name="ok2"),
    ]
    with pytest.raises(JobError, match="1/3 jobs failed"):
        run_jobs(specs, workers=1)
    with pytest.raises(JobError, match="boom-1"):
        run_jobs(specs, workers=2)


def test_run_jobs_records_metrics(tmp_path):
    registry = MetricsRegistry()
    cache = ResultCache(tmp_path / "cache")
    specs = [stream_spec(seed) for seed in (1, 2)]
    run_jobs(specs, workers=1, cache=cache, metrics=registry)
    assert registry["parallel.jobs.completed"].total() == 2
    assert registry["parallel.workers"].value() == 1
    assert registry["parallel.job.wall_seconds"].count(job="stream1") == 1
    # rerun: everything comes from the cache
    rerun = MetricsRegistry()
    report = run_jobs(specs, workers=1, cache=cache, metrics=rerun)
    assert report.cache_hits == 2 and report.executed == 0
    assert rerun["parallel.jobs.cache_hits"].total() == 2
    assert rerun["parallel.jobs.completed"].total() == 0


# -- the cache ----------------------------------------------------------------

def test_cache_roundtrip_preserves_value_and_digest(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = stream_spec(42)
    fresh = execute_job(spec)
    cache.store(spec, fresh)
    hit = cache.load(spec)
    assert hit is not None and hit.cached
    assert hit.value == fresh.value
    assert hit.digest == fresh.digest


def test_cache_misses_on_different_spec_and_corruption(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = stream_spec(42)
    cache.store(spec, execute_job(spec))
    assert cache.load(stream_spec(43)) is None  # different spec
    # corruption: truncate the entry on disk
    cache.path(spec).write_text("{not json")
    assert cache.load(spec) is None
    # schema mismatch
    cache.path(spec).write_text(json.dumps({"schema": "other", "name": spec.name}))
    assert cache.load(spec) is None


def test_cache_refuses_failed_jobs(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = JobSpec(name="bad", target="repro.parallel.selftest:boom",
                   kwargs={"message": "no"})
    with pytest.raises(ValueError, match="failed job"):
        cache.store(spec, execute_job(spec))


def test_code_digest_is_stable_within_a_process():
    assert code_digest() == code_digest()
    assert len(code_digest()) == 64
