"""Setuptools shim.

This offline environment lacks the ``wheel`` package, so PEP 517 editable
builds fail; ``pip install -e . --no-use-pep517 --no-build-isolation`` (or a
plain ``pip install -e .`` once ``wheel`` is present) uses this legacy path.
"""

from setuptools import setup

setup()
