"""Fig. 1 — bandwidth mismatch in high-capacity storage servers.

Paper numbers: 16 ch x 533 MB/s ≈ 8.5 GB/s media per SSD; 2 GB/s-class
per-SSD PCIe link; 16 GB/s host PCIe; at 64 SSDs the aggregate media
bandwidth (~545 GB/s) exceeds what the host can ingest by well over an
order of magnitude.
"""

from repro.analysis.experiments import format_series_table
from repro.analysis.figures import run_fig1


def test_fig1_bandwidth_mismatch(benchmark):
    rows = benchmark.pedantic(run_fig1, rounds=1, iterations=1)

    print("\n" + format_series_table(
        "Fig. 1 — media vs host bandwidth (GB/s)",
        ["SSDs", "aggregate media", "per-SSD link", "host ingest", "mismatch x"],
        [[r.ssd_count, r.media_bandwidth_bps / 1e9, r.endpoint_link_bps / 1e9,
          r.host_ingest_bps / 1e9, r.mismatch] for r in rows],
    ))

    by_count = {r.ssd_count: r for r in rows}
    # per-SSD media bandwidth ~8.5 GB/s (16 x 533 MB/s)
    assert abs(by_count[1].media_bandwidth_bps - 8.528e9) < 1e7
    # 64 SSDs: ~545 GB/s aggregate media, exactly the paper's figure
    assert abs(by_count[64].media_bandwidth_bps - 545.8e9) / 545.8e9 < 0.01
    # host ingest is a 16-lane Gen3 ceiling: 12-16 GB/s effective
    assert 12e9 < by_count[64].host_ingest_bps < 16e9
    # the mismatch exceeds an order of magnitude well before 64 SSDs
    assert by_count[16].mismatch > 8
    assert by_count[64].mismatch > 30
    # host ingest does not grow with device count (the funnel)
    assert by_count[64].host_ingest_bps == by_count[1].host_ingest_bps
