"""Wall-clock performance harness for the simulator itself.

The paper's headline figures are produced by sweeping fleet sizes through
the discrete-event simulator, so simulator throughput (events/sec of wall
clock) bounds how many scenarios the repo can explore.  This module pins a
set of scenarios — the N=1/4/8-device gzip+grep sweep underlying the
Fig. 6/7 runners — and measures them reproducibly:

- corpus generation and staging are *excluded* from the timed region (they
  are workload setup, not simulation);
- the measured region is the in-situ job phase: a gzip pass followed by a
  grep pass over the staged corpus;
- ``events_per_sec`` is ``Simulator.events_processed`` delta over elapsed
  wall seconds, the metric the perf guard and BENCH_sim.json track.

Run via ``python -m repro bench`` (see the CLI) or programmatically::

    from repro.analysis.perf import SCENARIOS, run_bench, write_bench_json
    results = run_bench(["n8"], repeat=3)

This file intentionally uses wall-clock time (``time.perf_counter``): it
measures the host, not the model.  The RNG/wall-clock lint allowlists it.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Generator, Sequence

from repro.config import ScenarioConfig, build_corpus, build_node
from repro.config.factory import scenario_for_node
from repro.proto.entities import Command
from repro.workloads import CorpusSpec

__all__ = [
    "BenchResult",
    "BenchScenario",
    "SCENARIOS",
    "bench_job",
    "load_bench_json",
    "run_bench",
    "run_scenario",
    "write_bench_json",
]

BENCH_SCHEMA = "repro.bench.v1"

#: Default baseline location: the repo root, so the perf trajectory is a
#: first-class, diffable artifact (``BENCH_sim.json``).
DEFAULT_BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_sim.json"


@dataclass(frozen=True, slots=True)
class BenchScenario:
    """One pinned measurement: an N-device node running gzip then grep.

    Weak scaling like Fig. 6: ``files_per_device`` is constant, so the
    total corpus grows with the device count and per-device work is fixed.

    ``shards > 0`` selects the sharded engine (:mod:`repro.sim.shard`)
    instead of the monolithic simulator: the same gzip-then-grep workload
    runs as a :class:`~repro.sim.shard.JobDrill` over per-device cells,
    and only the synchronized round loop (``ShardRun.execute``) is timed.
    ``shards == 0`` is the legacy monolithic path, byte-identical to the
    scenarios recorded before sharding existed.

    ``device_backend`` selects the translation backend (``backend`` already
    names the *shard execution* backend); ``"page"`` leaves the scenario's
    ``device`` section unset, keeping pre-backend configs — and their
    digests — byte-identical.
    """

    name: str
    devices: int
    files_per_device: int = 6
    mean_file_bytes: int = 64 * 1024
    seed: int = 1234
    shards: int = 0
    backend: str = "sequential"
    window_us: float = 0.0
    device_backend: str = "page"

    @property
    def files(self) -> int:
        return self.devices * self.files_per_device

    def config(self) -> ScenarioConfig:
        """This measurement as a typed scenario (digested in bench logs)."""
        from dataclasses import replace

        base = scenario_for_node(
            name=f"bench-{self.name}",
            devices=self.devices,
            seed=self.seed,
            device_capacity=48 * 1024 * 1024,
            store_data=True,
        )
        if self.shards:
            from repro.config.schema import ShardingConfig

            base = replace(
                base,
                sharding=ShardingConfig(
                    shards=self.shards,
                    backend=self.backend,
                    window_us=self.window_us,
                ),
            )
        if self.device_backend != "page":
            from repro.config.schema import DeviceBackendConfig

            base = replace(
                base, device=DeviceBackendConfig(backend=self.device_backend)
            )
        return replace(
            base,
            corpus=CorpusSpec(
                files=self.files,
                mean_file_bytes=self.mean_file_bytes,
                size_spread=0.2,
                seed=self.seed,
            ),
        )

    def build(self):
        """Construct the staged system; returns ``(node, books)``.

        Everything here is setup and excluded from the timed region.
        """
        config = self.config()
        books = build_corpus(config)
        node = build_node(config)
        node.sim.run(node.sim.process(node.stage_corpus(books, compressed=False)))
        return node, books

    def job(self, node, books) -> Generator:
        """The measured job: one gzip pass, then one grep pass."""
        placement = node.device_books(books)
        gzip_assignments = [
            (device, Command(command_line=f"gzip {book.name}"))
            for device, part in placement.items()
            for book in part
        ]
        grep_assignments = [
            (device, Command(command_line=f"grep xylophone {book.name}"))
            for device, part in placement.items()
            for book in part
        ]
        gzip_responses = yield from node.client.gather(gzip_assignments)
        grep_responses = yield from node.client.gather(grep_assignments)
        return gzip_responses + grep_responses


@dataclass(frozen=True, slots=True)
class BenchResult:
    """One scenario's measurement (best run of ``repeat``).

    ``shards == 0`` marks a monolithic-kernel measurement; nonzero means
    the sharded engine ran, and ``events`` counts host + cell events of
    the synchronized round loop.
    """

    scenario: str
    devices: int
    files: int
    events: int
    wall_seconds: float
    sim_seconds: float
    events_per_sec: float
    minions: int
    runs: int
    shards: int = 0

    def row(self) -> list:
        return [
            self.scenario, self.devices, self.minions, self.events,
            f"{self.wall_seconds * 1e3:.1f}", f"{self.events_per_sec:,.0f}",
        ]


SCENARIOS: dict[str, BenchScenario] = {
    "small": BenchScenario("small", devices=1, files_per_device=4,
                           mean_file_bytes=32 * 1024),
    "n1": BenchScenario("n1", devices=1),
    "n4": BenchScenario("n4", devices=4),
    "n8": BenchScenario("n8", devices=8),
    "n16": BenchScenario("n16", devices=16),
    "n64": BenchScenario("n64", devices=64),
    "n16-shard": BenchScenario("n16-shard", devices=16, shards=4),
    "n64-shard": BenchScenario("n64-shard", devices=64, shards=8),
    "zoned-n8": BenchScenario("zoned-n8", devices=8, device_backend="zoned"),
}


def _run_sharded_once(scenario: BenchScenario, repeat: int) -> BenchResult:
    """One sharded measurement: prepare excluded, ``execute()`` timed.

    The measured region is exactly the conservative round loop — corpus
    generation, cell staging, fault arming, and fingerprint collection all
    happen outside the clock, mirroring the monolithic path's exclusion of
    build/stage work.
    """
    from repro.sim.shard import ShardRun

    run = ShardRun(scenario.config(), workload="jobs", apps=("gzip", "grep"))
    run.prepare()
    try:
        t0 = time.perf_counter()
        stats = run.execute()
        wall = time.perf_counter() - t0
        payload = run.finish()
    finally:
        run.close()
    scorecard = payload["result"]["scorecard"]
    if scorecard.get("lost"):
        raise RuntimeError(
            f"bench scenario {scenario.name!r} lost {scorecard['lost']} jobs"
        )
    events = stats.host_events + stats.cell_events
    return BenchResult(
        scenario=scenario.name,
        devices=scenario.devices,
        files=scenario.files,
        events=events,
        wall_seconds=wall,
        sim_seconds=scorecard["makespan_ms"] / 1e3,
        events_per_sec=events / wall if wall > 0 else 0.0,
        minions=scorecard["dispatched"],
        runs=repeat,
        shards=run.shards,
    )


def run_scenario(scenario: BenchScenario, repeat: int = 1) -> BenchResult:
    """Measure one scenario ``repeat`` times; keep the fastest run.

    Each repetition rebuilds the system from scratch (fresh simulator,
    fresh corpus staging) so runs are independent and deterministic; only
    the wall clock varies with host noise, hence best-of-N.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    best: BenchResult | None = None
    for _ in range(repeat):
        if scenario.shards:
            result = _run_sharded_once(scenario, repeat)
            if best is None or result.wall_seconds < best.wall_seconds:
                best = result
            continue
        node, books = scenario.build()
        sim = node.sim
        events_before = sim.events_processed
        sim_before = sim.now
        t0 = time.perf_counter()
        responses = sim.run(sim.process(scenario.job(node, books)))
        wall = time.perf_counter() - t0
        bad = [
            r for r in responses
            if r is None or r.status.value not in ("ok", "app-error")
        ]
        if bad:
            raise RuntimeError(
                f"bench scenario {scenario.name!r} failed on {len(bad)} minions"
            )
        events = sim.events_processed - events_before
        result = BenchResult(
            scenario=scenario.name,
            devices=scenario.devices,
            files=scenario.files,
            events=events,
            wall_seconds=wall,
            sim_seconds=sim.now - sim_before,
            events_per_sec=events / wall if wall > 0 else 0.0,
            minions=len(responses),
            runs=repeat,
        )
        if best is None or result.wall_seconds < best.wall_seconds:
            best = result
    assert best is not None
    return best


def bench_job(name: str, repeat: int = 1) -> dict:
    """One scenario measurement as a JSON-encodable parallel-runner item.

    The wall-clock fields measure *this* run on *this* host; bench jobs are
    therefore never cached (see :func:`repro.parallel.matrix.bench_jobs`).
    """
    from dataclasses import asdict

    return asdict(run_scenario(SCENARIOS[name], repeat=repeat))


def run_bench(
    names: Sequence[str] | None = None,
    repeat: int = 1,
    workers: int = 1,
    metrics=None,
) -> list[BenchResult]:
    """Run the named scenarios (default: n1, n4, n8) in order.

    ``workers > 1`` shards scenarios across spawn processes — useful for
    exploring many scenarios quickly, but concurrent measurements contend
    for cores, so keep ``workers=1`` for baseline-quality numbers (and see
    ``benchmarks/perf/README.md`` for the interleaved A/B protocol).
    """
    picked = list(names) if names else ["n1", "n4", "n8"]
    unknown = [n for n in picked if n not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown bench scenarios {unknown}; have {sorted(SCENARIOS)}")
    if workers <= 1:
        return [run_scenario(SCENARIOS[name], repeat=repeat) for name in picked]
    from repro.parallel.matrix import bench_jobs
    from repro.parallel.runner import run_jobs

    report = run_jobs(
        bench_jobs(picked, repeat=repeat), workers=workers, metrics=metrics
    )
    return [BenchResult(**result.value) for result in report.results]


def profile_scenario(scenario: BenchScenario, limit: int = 25) -> str:
    """cProfile the measured region; returns the formatted hot-function table."""
    import cProfile
    import io
    import pstats

    node, books = scenario.build()
    sim = node.sim
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run(sim.process(scenario.job(node, books)))
    profiler.disable()
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("tottime").print_stats(limit)
    return buf.getvalue()


# -- BENCH_sim.json ---------------------------------------------------------


def write_bench_json(
    results: Sequence[BenchResult], path: str | Path | None = None
) -> Path:
    """Persist results as the repo's perf baseline artifact."""
    path = Path(path) if path is not None else DEFAULT_BENCH_PATH
    payload = {
        "schema": BENCH_SCHEMA,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "scenarios": {
            r.scenario: {
                "devices": r.devices,
                "files": r.files,
                "minions": r.minions,
                "events": r.events,
                "wall_seconds": round(r.wall_seconds, 6),
                "sim_seconds": r.sim_seconds,
                "events_per_sec": round(r.events_per_sec, 1),
                "runs": r.runs,
                **({"shards": r.shards} if r.shards else {}),
            }
            for r in results
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_json(path: str | Path | None = None) -> dict | None:
    """The recorded baseline, or ``None`` when absent (fresh clone)."""
    path = Path(path) if path is not None else DEFAULT_BENCH_PATH
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    if data.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"unrecognised bench schema in {path}: {data.get('schema')!r}")
    return data
