"""Ablation — static wear leveling under skewed writes.

A 24 TB archive drive sees heavily skewed traffic; without static wear
leveling, the blocks rotating through the hot working set wear out while
cold blocks stay pristine — and the device dies at the hot blocks' end of
life.  The FTL's ``wl_delta`` forces cold blocks back into rotation when
the P/E spread exceeds the threshold; the cost is extra migrations.
"""

from repro.analysis.experiments import format_series_table
from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer, FtlConfig
from repro.sim import Simulator
from repro.workloads import hot_cold

GEO = FlashGeometry(
    channels=2, dies_per_channel=1, planes_per_die=1, blocks_per_plane=12,
    pages_per_block=16, page_size=2048,
)
WRITES = 12_000


def run_policy(wl_delta: int) -> dict:
    sim = Simulator(seed=8)
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9),
                       store_data=False)
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=2048)))
    ftl = FlashTranslationLayer(
        sim, flash, ecc,
        config=FtlConfig(op_ratio=0.25, wl_delta=wl_delta, write_buffer_pages=8),
    )
    rng = sim.rng("wl")
    logical = ftl.logical_pages

    def churn():
        for lpn in range(logical):
            yield from ftl.write(lpn, None)
        for lpn in hot_cold(rng, logical, WRITES, hot_fraction=0.1,
                            hot_probability=0.95):
            yield from ftl.write(int(lpn), None)
        yield from ftl.flush()

    sim.run(sim.process(churn()))
    lo, hi, mean = ftl.allocator.wear_spread()
    return {
        "wl_delta": wl_delta or "off",
        "pe_min": lo,
        "pe_max": hi,
        "spread": hi - lo,
        "mean": mean,
        "migrations": ftl.gc.wl_migrations,
        "wa": ftl.write_amplification(),
    }


def test_ablation_wear_leveling(benchmark):
    def experiment():
        return run_policy(0), run_policy(8)

    off, on = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n" + format_series_table(
        f"Ablation — static WL under 95/10 skew ({WRITES} writes)",
        ["wl_delta", "P/E min", "P/E max", "spread", "mean", "migrations", "WA"],
        [[r["wl_delta"], r["pe_min"], r["pe_max"], r["spread"], r["mean"],
          r["migrations"], r["wa"]] for r in (off, on)],
    ))

    # without WL the spread is wide; with WL it is bounded near the threshold
    assert off["migrations"] == 0
    assert on["migrations"] > 0
    assert off["spread"] > 3 * on["spread"]
    assert on["spread"] <= 8 + 4  # threshold plus in-flight slack
    # the price is modest: mean wear (total work) grows by < 15%
    assert on["mean"] < 1.15 * off["mean"] + 1
