"""Comparison systems.

Three runnable baselines plus the Table I capability registry:

- :mod:`repro.baselines.hostonly` — move data to the Xeon (conventional);
- :mod:`repro.baselines.biscuit` — Biscuit-style ISC on embedded cores
  *shared* with the SSD firmware (interference by construction);
- :mod:`repro.baselines.fpga` — BlueDBM-style fixed-function FPGA
  acceleration (fast, efficient, inflexible);
- :mod:`repro.baselines.registry` — the related-work feature matrix
  (paper Table I), regenerated programmatically.
"""

from repro.baselines.biscuit import ARM_R7_DUAL, BiscuitSSD
from repro.baselines.fpga import FpgaAcceleratedSSD, FpgaKernel
from repro.baselines.hostonly import HostOnlyRunner
from repro.baselines.registry import SYSTEMS, SystemCapabilities, table1_rows

__all__ = [
    "ARM_R7_DUAL",
    "BiscuitSSD",
    "FpgaAcceleratedSSD",
    "FpgaKernel",
    "HostOnlyRunner",
    "SYSTEMS",
    "SystemCapabilities",
    "table1_rows",
]
