"""Fast-release host data buffer.

The paper's SSD controller includes a "fast-release host data buffer": host
writes complete as soon as the data lands in controller DRAM, and a
background flusher destages to NAND.  This hides tPROG from the host write
latency and coalesces rewrites of hot logical pages that are still buffered.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generator

from repro.sim import Event, Simulator

__all__ = ["WriteBuffer"]


class WriteBuffer:
    """A bounded write-back buffer keyed by logical page number.

    Parameters
    ----------
    sim:
        Simulator.
    capacity_pages:
        Maximum buffered pages; inserts beyond this block the writer
        (back-pressure towards the host).
    destage:
        Callback ``(lpn, data) -> generator`` that programs one page to
        flash; run by the internal flusher process.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity_pages: int,
        destage: Callable[[int, bytes | None], Generator],
        name: str = "wbuf",
        workers: int = 4,
    ):
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.sim = sim
        self.name = name
        self._space_gate_name = f"{name}.space"
        self._data_gate_name = f"{name}.data"
        self._drained_gate_name = f"{name}.drained"
        self.capacity = capacity_pages
        self.destage = destage
        self.entries: "OrderedDict[int, bytes | None]" = OrderedDict()
        self._inflight = 0
        self._inflight_lpns: set[int] = set()
        # Data being destaged stays readable (it is still only in DRAM until
        # the flash program completes and the mapping is bound).
        self._inflight_data: dict[int, bytes | None] = {}
        self._space_waiters: list[Event] = []
        self._data_waiters: list[Event] = []
        self._drain_waiters: list[Event] = []
        self.hits = 0  # rewrites coalesced while buffered
        self.inserts = 0
        self.destaged = 0
        self.failures: list[tuple[int, BaseException]] = []  # lost destages
        self._flushers = [
            sim.process(self._flush_loop(), name=f"{name}.flusher{i}") for i in range(workers)
        ]

    # -- public API ----------------------------------------------------------
    def put(self, lpn: int, data: bytes | None) -> Generator:
        """Insert (or overwrite) a buffered page; blocks while full."""
        while lpn not in self.entries and len(self.entries) >= self.capacity:
            gate = self.sim.event(self._space_gate_name)
            self._space_waiters.append(gate)
            yield gate
        if lpn in self.entries:
            self.entries[lpn] = data
            self.entries.move_to_end(lpn)
            self.hits += 1
        else:
            self.entries[lpn] = data
            self.inserts += 1
            self._wake(self._data_waiters)
        return None

    def peek(self, lpn: int) -> tuple[bool, bytes | None]:
        """(hit, data) — read-path lookup, no simulation time."""
        if lpn in self.entries:
            return True, self.entries[lpn]
        if lpn in self._inflight_data:
            return True, self._inflight_data[lpn]
        return False, None

    def discard(self, lpn: int) -> bool:
        """Drop a buffered page (TRIM path).  Returns True if present."""
        present = False
        if lpn in self.entries:
            del self.entries[lpn]
            self._wake(self._space_waiters)
            self._maybe_drained()
            present = True
        if lpn in self._inflight_data:
            # the destage still completes, but reads must not see the data;
            # the FTL unbinds the mapping once the destage drains
            del self._inflight_data[lpn]
            present = True
        return present

    def flush(self) -> Generator:
        """Wait until every buffered page reaches flash."""
        while self.entries or self._inflight:
            gate = self.sim.event(self._drained_gate_name)
            self._drain_waiters.append(gate)
            yield gate
        return None

    def __len__(self) -> int:
        return len(self.entries)

    # -- internals ----------------------------------------------------------
    def _wake(self, waiters: list[Event]) -> None:
        if waiters:
            # succeed() only schedules (callbacks run later), so nothing can
            # append to the list mid-iteration; same FIFO order as popping.
            for gate in waiters:
                gate.succeed()
            waiters.clear()

    def _maybe_drained(self) -> None:
        if not self.entries and not self._inflight:
            self._wake(self._drain_waiters)

    def _pop_ready(self) -> tuple[int, bytes | None] | None:
        """Oldest entry whose lpn has no destage in flight (preserves
        per-lpn write ordering across parallel workers)."""
        for lpn in self.entries:
            if lpn not in self._inflight_lpns:
                return lpn, self.entries.pop(lpn)
        return None

    def _flush_loop(self) -> Generator:
        while True:
            item = self._pop_ready()
            while item is None:
                gate = self.sim.event(self._data_gate_name)
                self._data_waiters.append(gate)
                yield gate
                item = self._pop_ready()
            lpn, data = item
            self._inflight += 1
            self._inflight_lpns.add(lpn)
            self._inflight_data[lpn] = data
            self._wake(self._space_waiters)
            try:
                try:
                    yield from self.destage(lpn, data)
                except Exception as exc:
                    # A failed destage (e.g. device full) loses this page but
                    # must not kill the flusher — record it and keep serving
                    # the rest of the buffer.  Kernel-level errors still
                    # propagate (they indicate model bugs, not media state).
                    from repro.ftl.ftl import LogicalIOError

                    if not isinstance(exc, LogicalIOError):
                        raise
                    self.failures.append((lpn, exc))
            finally:
                self._inflight -= 1
                self._inflight_lpns.discard(lpn)
                self._inflight_data.pop(lpn, None)
                self.destaged += 1
                self._wake(self._data_waiters)  # a same-lpn entry may be ready now
                self._maybe_drained()
