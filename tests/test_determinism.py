"""Reproducibility: identical seeds give bit-identical runs.

For a simulator this is a headline feature — every number in
EXPERIMENTS.md must be reproducible from ``(seed, model, workload)``.
"""

from repro.cluster import StorageNode
from repro.proto import Command
from repro.workloads import BookCorpus, CorpusSpec


def run_once(seed):
    books = BookCorpus(CorpusSpec(files=4, mean_file_bytes=32 * 1024)).generate()
    node = StorageNode.build(devices=2, seed=seed, device_capacity=24 * 1024 * 1024)
    sim = node.sim
    sim.run(sim.process(node.stage_corpus(books, compressed=False)))
    assignments = [
        (device, Command(command_line=f"grep xylophone {book.name}"))
        for device, part in node.device_books(books).items()
        for book in part
    ]
    mark = node.meter.snapshot()

    def job():
        return (yield from node.client.gather(assignments))

    responses = sim.run(sim.process(job()))
    report = node.meter.window(mark)
    return {
        "finished_at": sim.now,
        "stdout": tuple(r.stdout for r in responses),
        "exec_seconds": tuple(r.execution_seconds for r in responses),
        "energy": report.total_j,
        "flash_ops": (
            node.compstors[0].flash.stats.reads,
            node.compstors[0].flash.stats.programs,
        ),
    }


def test_same_seed_bit_identical():
    a = run_once(seed=42)
    b = run_once(seed=42)
    assert a == b


def test_different_seed_keeps_functional_results():
    """Different seeds change the random streams (BER draws), but never the
    functional results.  Note the *timing* may coincide: at the default
    raw BER (~1e-6) a short run frequently draws zero bit errors under any
    seed, so identical finish times across seeds are legitimate."""
    a = run_once(seed=1)
    b = run_once(seed=2)
    assert a["stdout"] == b["stdout"]  # correctness is seed-independent
    assert a["flash_ops"] == b["flash_ops"]  # op counts too

    from repro.sim import Simulator

    # the underlying streams really do differ per seed
    assert Simulator(seed=1).rng("flash").random() != Simulator(seed=2).rng("flash").random()


def test_corpus_generation_independent_of_simulator():
    """The corpus derives from its own spec seed, not the simulator seed."""
    a = BookCorpus(CorpusSpec(files=2, seed=7)).generate()
    b = BookCorpus(CorpusSpec(files=2, seed=7)).generate()
    assert [x.plain for x in a] == [y.plain for y in b]
