"""One-shot validation: does this build still reproduce the paper?

:func:`validate_against_paper` runs every evaluation experiment and grades
each published claim, returning a structured scorecard.  ``python -m repro
validate`` prints it — the reproduction certificate a reviewer would ask
for.

Each claim is a self-contained, seeded experiment (its own simulators,
its own corpus), so the scorecard is a shardable matrix: claims are
declared as module-level functions the parallel runner
(:mod:`repro.parallel`) can execute in ``spawn`` workers, and
``validate_against_paper`` merges the graded claims in canonical paper
order no matter how many workers ran them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from repro.analysis.figures import (
    DEFAULT_FIG8_SPEC,
    fig6_linearity,
    run_fig1,
    run_fig6,
    run_fig7,
    run_fig8,
)
from repro.baselines import SYSTEMS
from repro.config import ScenarioConfig, scenario_from_dict

__all__ = [
    "CLAIM_ORDER",
    "Claim",
    "run_claim",
    "validate_against_paper",
]

#: Fig. 8 absolute values must land within this fraction of the paper's bars.
FIG8_TOLERANCE = 0.40


@dataclass(frozen=True, slots=True)
class Claim:
    """One graded claim from the paper."""

    source: str  # "Fig. 1", "Table I", ...
    claim: str
    measured: str
    passed: bool


def _device_counts(
    quick: bool, scenario: ScenarioConfig | None = None
) -> tuple[int, ...]:
    """``quick=True`` trims device counts for sub-minute wall time.

    A scenario caps the sweep at its ``fleet.devices_per_node``, so
    ``--set fleet.devices_per_node=2`` genuinely shrinks the experiment.
    """
    counts = (1, 2) if quick else (1, 2, 4)
    if scenario is not None:
        capped = tuple(n for n in counts if n <= scenario.fleet.devices_per_node)
        counts = capped or (scenario.fleet.devices_per_node,)
    return counts


def claim_fig1(quick: bool = False, scenario: ScenarioConfig | None = None) -> Claim:
    rows = run_fig1((1, 64))
    at64 = next(r for r in rows if r.ssd_count == 64)
    return Claim(
        "Fig. 1",
        "aggregate media bandwidth at 64 SSDs ~545 GB/s vs ~16 GB/s host PCIe",
        f"{at64.media_bandwidth_bps / 1e9:.0f} GB/s media, "
        f"{at64.host_ingest_bps / 1e9:.1f} GB/s ingest ({at64.mismatch:.0f}x)",
        abs(at64.media_bandwidth_bps - 545.8e9) / 545.8e9 < 0.02 and at64.mismatch > 30,
    )


def claim_table1(quick: bool = False, scenario: ScenarioConfig | None = None) -> Claim:
    full = [s.system for s in SYSTEMS if s.all_features]
    return Claim(
        "Table I",
        "CompStor is the only full-feature in-storage computation system",
        f"full-feature rows: {full}",
        full == ["CompStor"],
    )


def claim_fig6(quick: bool = False, scenario: ScenarioConfig | None = None) -> Claim:
    results = run_fig6(
        app="grep", device_counts=_device_counts(quick, scenario), scenario=scenario
    )
    slope, _, r2 = fig6_linearity(results)
    return Claim(
        "Fig. 6",
        "performance scales linearly with the number of CompStors",
        f"grep slope {slope:.1f} MB/s/device, r^2={r2:.4f}",
        r2 > 0.98 and slope > 0,
    )


def claim_fig7(quick: bool = False, scenario: ScenarioConfig | None = None) -> Claim:
    fig7 = run_fig7(
        device_counts=_device_counts(quick, scenario), scenario=scenario
    )
    device_tp = fig7[0]["compstor_mb_s"]
    host_tp = fig7[0]["host_mb_s"]
    aggregate_monotone = all(
        a["aggregate_mb_s"] < b["aggregate_mb_s"] for a, b in zip(fig7, fig7[1:])
    )
    return Claim(
        "Fig. 7",
        "one CompStor is below the Xeon; aggregate grows with devices",
        f"device {device_tp:.1f} vs host {host_tp:.1f} MB/s; aggregate monotone: "
        f"{aggregate_monotone}",
        device_tp < host_tp and aggregate_monotone,
    )


def claim_fig8(quick: bool = False, scenario: ScenarioConfig | None = None) -> Claim:
    # Fig. 8's grading tolerances are calibrated against its own corpus:
    # keep that pinned even when the rest of the scenario varies.
    if scenario is not None:
        scenario = replace(scenario, corpus=DEFAULT_FIG8_SPEC)
    fig8 = run_fig8(scenario=scenario)
    wins = all(r.compstor_j_per_gb < r.xeon_j_per_gb for r in fig8)
    within = all(
        abs(r.compstor_j_per_gb - r.paper_compstor) / r.paper_compstor < FIG8_TOLERANCE
        and abs(r.xeon_j_per_gb - r.paper_xeon) / r.paper_xeon < FIG8_TOLERANCE
        for r in fig8
    )
    best = max(r.ratio for r in fig8)
    return Claim(
        "Fig. 8",
        "CompStor wins energy/GB on all six apps, up to ~3X",
        f"wins all: {wins}; within {FIG8_TOLERANCE:.0%} of paper bars: {within}; "
        f"best ratio {best:.2f}x",
        wins and within and best >= 2.8,
    )


#: Claim functions in canonical (paper) order — the merge order of the
#: scorecard regardless of which worker finishes first.
CLAIMS = {
    "fig1": claim_fig1,
    "table1": claim_table1,
    "fig6": claim_fig6,
    "fig7": claim_fig7,
    "fig8": claim_fig8,
}
CLAIM_ORDER: tuple[str, ...] = tuple(CLAIMS)


def run_claim(name: str, quick: bool = False, scenario: dict | None = None) -> dict:
    """Grade one claim; returns a JSON-encodable payload (worker target)."""
    config = scenario_from_dict(scenario) if scenario is not None else None
    return asdict(CLAIMS[name](quick=quick, scenario=config))


def validate_against_paper(
    quick: bool = False,
    workers: int = 1,
    cache=None,
    metrics=None,
    scenario: dict | None = None,
) -> list[Claim]:
    """Run the evaluation and grade each claim.

    ``workers`` shards the claims across spawn processes; ``cache`` (a
    :class:`repro.parallel.ResultCache`) reuses results for unchanged
    code + spec digests.  Output is identical for every worker count.
    ``scenario`` (a :func:`repro.config.to_dict` payload) reshapes every
    claim's experiment and enters each job's cache key.
    """
    from repro.parallel.matrix import validation_jobs
    from repro.parallel.runner import run_jobs

    report = run_jobs(
        validation_jobs(quick=quick, scenario=scenario),
        workers=workers, cache=cache, metrics=metrics,
    )
    return [Claim(**result.value) for result in report.results]
