"""Tests for minion placement policies and the dispatcher."""

from repro.cluster import (
    LeastLoadedBalancer,
    MinionDispatcher,
    RoundRobinBalancer,
    StorageNode,
)
from repro.proto import Command


def build_node(devices=3):
    return StorageNode.build(devices=devices, device_capacity=16 * 1024 * 1024)


def stage_everywhere(node, name, data):
    def flow():
        for ssd in node.compstors:
            yield from ssd.fs.write_file(name, data)

    node.sim.run(node.sim.process(flow()))


def test_round_robin_spreads_evenly():
    node = build_node(devices=3)
    stage_everywhere(node, "f.txt", b"fox\n" * 20)
    dispatcher = MinionDispatcher(node.client, RoundRobinBalancer())

    def flow():
        commands = [Command(command_line="grep fox f.txt") for _ in range(9)]
        return (yield from dispatcher.submit_all(commands))

    responses = node.sim.run(node.sim.process(flow()))
    assert all(r.ok for r in responses)
    assert dispatcher.device_share() == {"compstor0": 3, "compstor1": 3, "compstor2": 3}


def test_least_loaded_avoids_busy_device():
    node = build_node(devices=2)
    stage_everywhere(node, "f.txt", b"fox\n" * 20)
    # occupy compstor0 with a long-running scan
    stage_everywhere(node, "big.txt", b"fox filler line\n" * 20000)

    def flow():
        hog = node.sim.process(node.client.run("compstor0", "grep fox big.txt"))
        yield node.sim.timeout(2e-3)  # let the hog start
        balancer = LeastLoadedBalancer()
        dispatcher = MinionDispatcher(node.client, balancer)
        responses = yield from dispatcher.submit_all(
            [Command(command_line="grep fox f.txt") for _ in range(4)]
        )
        yield hog
        return responses, dispatcher.device_share()

    responses, share = node.sim.run(node.sim.process(flow()))
    assert all(r.ok for r in responses)
    # the idle device should receive the bulk of the work
    assert share.get("compstor1", 0) >= 3


def test_telemetry_placement_beats_round_robin_under_skew():
    """The paper's load-balancing pitch: telemetry-driven placement should
    finish a skewed workload faster than oblivious rotation, because
    round-robin keeps feeding the device that is already busy.  bzip2 is the
    CPU-bound app, so sharing the quad-A53 with the hogs genuinely hurts."""

    def run(balancer_factory):
        node = build_node(devices=2)
        for i in range(8):
            stage_everywhere(node, f"f{i}.txt", b"fox filler line\n" * 500)
        for i in range(3):
            stage_everywhere(node, f"big{i}.txt", b"fox filler line\n" * 10000)
        sim = node.sim

        def flow():
            # skew: 3 of compstor0's 4 A53 cores are hogged by long
            # compressions before placement runs
            hogs = [
                sim.process(node.client.run("compstor0", f"bzip2 big{i}.txt"))
                for i in range(3)
            ]
            yield sim.timeout(2e-3)
            dispatcher = MinionDispatcher(node.client, balancer_factory())
            start = sim.now
            yield from dispatcher.submit_all(
                [Command(command_line=f"bzip2 f{i}.txt") for i in range(8)]
            )
            elapsed = sim.now - start
            for hog in hogs:
                yield hog
            return elapsed, dispatcher.device_share()

        return sim.run(sim.process(flow()))

    rr_elapsed, rr_share = run(RoundRobinBalancer)
    ll_elapsed, ll_share = run(LeastLoadedBalancer)
    # round-robin split the work evenly despite the hogs...
    assert rr_share == {"compstor0": 4, "compstor1": 4}
    # ...while telemetry routed the bulk to the idle device and won
    assert ll_share.get("compstor1", 0) > ll_share.get("compstor0", 0)
    assert ll_elapsed < rr_elapsed


def test_dispatcher_placement_counter():
    from repro.obs import MetricsRegistry

    node = build_node(devices=2)
    stage_everywhere(node, "f.txt", b"fox\n")
    metrics = MetricsRegistry.for_sim(node.sim)
    dispatcher = MinionDispatcher(node.client, RoundRobinBalancer(), metrics=metrics)

    def flow():
        return (
            yield from dispatcher.submit_all([Command(command_line="grep fox f.txt")] * 4)
        )

    node.sim.run(node.sim.process(flow()))
    counter = metrics["cluster.placements"]
    assert counter.value(device="compstor0", policy="round-robin") == 2
    assert counter.value(device="compstor1", policy="round-robin") == 2


def test_dispatcher_records_placements():
    node = build_node(devices=2)
    stage_everywhere(node, "f.txt", b"fox\n")
    dispatcher = MinionDispatcher(node.client, RoundRobinBalancer())

    def flow():
        return (
            yield from dispatcher.submit_all([Command(command_line="grep fox f.txt")] * 2)
        )

    node.sim.run(node.sim.process(flow()))
    assert len(dispatcher.placements) == 2
    devices = [d for d, _ in dispatcher.placements]
    assert set(devices) == {"compstor0", "compstor1"}


def test_least_loaded_ties_break_in_attachment_order():
    """Regression: equal load scores used to tie-break lexicographically,
    which puts "compstor10" ahead of "compstor2" — placement (and any
    fairness result built on it) then depends on how devices happen to be
    named.  Ties must break by stable attachment order instead."""

    class _Snap:
        def __init__(self, score):
            self._score = score

        def load_score(self):
            return self._score

    class _Client:
        """Just enough of InSituClient for LeastLoadedBalancer.pick."""

        def __init__(self, names, scores=None):
            self._names = list(names)
            self._scores = scores or {}

        def devices(self):
            return list(self._names)

        def breaker_state(self, _name):
            return "closed"

        def status_all(self, return_exceptions=False):
            # worst-case iteration order: reversed, to prove the pick does
            # not depend on dict order either
            return {n: _Snap(self._scores.get(n, 0.0)) for n in reversed(self._names)}
            yield  # pragma: no cover - generator protocol

    def pick(client):
        gen = LeastLoadedBalancer().pick(client)
        try:
            next(gen)
        except StopIteration as stop:
            return stop.value
        raise AssertionError("pick should finish without waiting")

    # attachment order wins over lexicographic order on a tie
    assert pick(_Client(["compstor2", "compstor10"])) == "compstor2"
    # sanity: lexicographic order would have said compstor10
    assert min(["compstor2", "compstor10"]) == "compstor10"
    # twelve devices, all idle: always the first attached
    names = [f"compstor{i}" for i in range(12)]
    assert pick(_Client(names)) == "compstor0"
    # a lower load score still beats attachment order
    assert pick(_Client(names, scores={"compstor7": -1.0})) == "compstor7"
