"""Shared-resource primitives: :class:`Resource`, :class:`PriorityResource`,
:class:`Store` and :class:`Container`.

These follow SimPy semantics: ``request()`` / ``get()`` / ``put()`` return
events that a process yields; releases are immediate.  ``request()`` objects
are context managers so the common pattern is::

    with bus.request() as req:
        yield req
        yield sim.timeout(transfer_time)
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable

from repro.sim.core import Event, Simulator

__all__ = ["Container", "PreemptionError", "PriorityResource", "Resource", "Store"]


class PreemptionError(Exception):
    """Raised inside a process whose resource slot was preempted."""


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "_key")

    def __init__(self, resource: "Resource", priority: int = 0):
        # Flattened Event.__init__; the name is precomputed once per
        # resource (_req_name) rather than formatted per request — requests
        # are created on every command/page/bus transaction.
        self.sim = resource.sim
        self.name = resource._req_name
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self._defused = False
        self.resource = resource
        self.priority = priority
        self._key = (priority, next(resource._ticket))
        resource._request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request (no-op if already granted)."""
        self.resource.release(self)


class Resource:
    """A server pool with ``capacity`` slots and a FIFO wait queue.

    Utilisation statistics are tracked so power/telemetry models can sample
    busy time without instrumenting every caller.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self._req_name = f"request({name})"
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] | list[Request] = deque()
        self._ticket = itertools.count()
        # busy-time integral for utilisation reporting
        self._busy_integral = 0.0
        self._last_change = 0.0

    # -- accounting -------------------------------------------------------
    def _account(self) -> None:
        now = self.sim.now
        self._busy_integral += len(self.users) * (now - self._last_change)
        self._last_change = now

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def utilization(self) -> float:
        """Mean fraction of capacity busy since t=0."""
        now = self.sim.now
        if now <= 0:
            return 0.0
        integral = self._busy_integral + len(self.users) * (now - self._last_change)
        return integral / (now * self.capacity)

    # -- protocol ----------------------------------------------------------
    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)

    def _request(self, req: Request) -> None:
        if len(self.users) < self.capacity and not self.queue:
            self._grant(req)
        else:
            self._enqueue(req)

    def _enqueue(self, req: Request) -> None:
        self.queue.append(req)

    def _dequeue(self) -> Request | None:
        assert isinstance(self.queue, deque)
        return self.queue.popleft() if self.queue else None

    def _grant(self, req: Request) -> None:
        # _account() inlined: grant/release bracket every command, page and
        # bus transaction, so the method-call overhead is measurable.
        users = self.users
        now = self.sim._now
        self._busy_integral += len(users) * (now - self._last_change)
        self._last_change = now
        users.append(req)
        req.succeed(self)

    def release(self, req: Request) -> None:
        """Return a slot (or withdraw a queued request)."""
        users = self.users
        if req in users:
            now = self.sim._now
            self._busy_integral += len(users) * (now - self._last_change)
            self._last_change = now
            users.remove(req)
            nxt = self._dequeue()
            if nxt is not None:
                self._grant(nxt)
        else:
            try:
                self.queue.remove(req)
            except ValueError:
                pass  # releasing twice, or a request that was never granted


class _HeapQueueView:
    """Live, read-only sequence view over a :class:`PriorityResource` heap.

    Keeps ``resource.queue`` introspection (``len``, truthiness, iteration
    in priority order) without rebuilding a list on every enqueue/dequeue —
    that rebuild was O(n) per operation and showed up in fleet profiles.
    """

    __slots__ = ("_heap",)

    def __init__(self, heap: list):
        self._heap = heap

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self):
        return (r for _, r in sorted(self._heap, key=lambda kr: kr[0]))


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by ``priority`` (lower first),
    FIFO within a priority level."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "prio-resource"):
        super().__init__(sim, capacity, name)
        self._heap: list[tuple[tuple[int, int], Request]] = []
        # queue is a live view; release() mutates _heap in place so the
        # view never dangles.
        self.queue = _HeapQueueView(self._heap)

    def _enqueue(self, req: Request) -> None:
        heapq.heappush(self._heap, (req._key, req))

    def _dequeue(self) -> Request | None:
        while self._heap:
            _, req = heapq.heappop(self._heap)
            if not req._triggered:  # skip cancelled requests
                return req
        return None

    def release(self, req: Request) -> None:
        if req in self.users:
            super().release(req)
        else:
            self._heap[:] = [(k, r) for (k, r) in self._heap if r is not req]
            heapq.heapify(self._heap)


class Store:
    """An unbounded-or-bounded FIFO buffer of Python objects.

    ``put(item)`` and ``get()`` return events.  ``get(filter=...)`` grabs the
    first item matching a predicate (used for message demultiplexing).
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"), name: str = "store"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.name = name
        self._put_name = f"put({name})"
        self._get_name = f"get({name})"
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[tuple[Event, Callable[[Any], bool] | None]] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        ev = Event(self.sim, self._put_name)
        self._putters.append((ev, item))
        self._settle()
        return ev

    def get(self, filter: Callable[[Any], bool] | None = None) -> Event:
        ev = Event(self.sim, self._get_name)
        self._getters.append((ev, filter))
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            # move queued puts into the buffer while there is room
            while self._putters and len(self.items) < self.capacity:
                ev, item = self._putters.popleft()
                self.items.append(item)
                ev.succeed()
                progress = True
            # satisfy getters from the buffer
            if self._getters and self.items:
                remaining: deque[tuple[Event, Callable[[Any], bool] | None]] = deque()
                while self._getters:
                    ev, pred = self._getters.popleft()
                    if pred is None:
                        # Fast path (the overwhelmingly common unfiltered
                        # get): identical outcome to the scan below finding
                        # index 0, without the enumerate machinery.
                        ev.succeed(self.items.popleft())
                        progress = True
                        if not self.items:
                            remaining.extend(self._getters)
                            self._getters.clear()
                        continue
                    found = None
                    for idx, item in enumerate(self.items):
                        if pred(item):
                            found = idx
                            break
                    if found is None:
                        remaining.append((ev, pred))
                    else:
                        item = self.items[found]
                        del self.items[found]
                        ev.succeed(item)
                        progress = True
                self._getters = remaining


class Container:
    """A homogeneous quantity (bytes of buffer space, joules of budget).

    ``get(n)`` blocks until at least ``n`` units are present; ``put(n)``
    blocks until there is room below ``capacity``.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "container",
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.sim = sim
        self.name = name
        self._put_name = f"put({name})"
        self._get_name = f"get({name})"
        self.capacity = capacity
        self._level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("amount must be positive")
        ev = Event(self.sim, self._put_name)
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("amount must be positive")
        ev = Event(self.sim, self._get_name)
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                ev, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    ev.succeed()
                    progress = True
            if self._getters:
                ev, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    ev.succeed(amount)
                    progress = True
