"""SLO accounting: latency tails, fairness, shed/violation counts.

The tracker is the service frontend's single sink: every arrival,
admission decision, completion, and loss lands here, and :meth:`report`
freezes the run into a :class:`SloReport` — the JSON-able scorecard the
CLI prints, the determinism tests digest, and the CI golden pins.

Instruments are registered on the fleet's metrics registry when metrics
are enabled (so traffic runs export through :mod:`repro.obs.export` like
every other subsystem); with metrics off the tracker brings its own
private enabled registry, because the scorecard itself is not optional.

Latency histograms use the exact-reservoir mode
(:class:`repro.obs.metrics.Histogram` ``exact_limit``): p999 at a few
hundred completions is meaningless under bucket interpolation, and exact
quantiles are also what makes the scorecard byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.config.schema import PriorityClassConfig
from repro.obs.metrics import MetricsRegistry

__all__ = ["SloReport", "SloTracker", "jain_index"]

#: Reservoir bound for exact tail quantiles; beyond this the histograms
#: degrade to bucket interpolation (drills stay far below it).
EXACT_LIMIT = 8192

#: Shed reasons the admission pipeline can report.
SHED_REASONS = ("queue_full", "rate_limited")


def jain_index(counts: Sequence[float]) -> float:
    """Jain's fairness index over per-tenant allocations: 1.0 is perfectly
    fair, 1/n is maximally unfair.  Empty input reports 1.0 (vacuous)."""
    values = [float(c) for c in counts]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True, slots=True)
class SloReport:
    """One traffic run, frozen: the scorecard payload."""

    pattern: str
    requests: int
    admitted: int
    shed: dict[str, int]
    completed: int
    lost: int
    violations: int
    p50_ms: float
    p99_ms: float
    p999_ms: float
    queue_wait_p99_ms: float
    jain: float
    tenants_seen: int
    peak_queue: int
    peak_buckets: int
    per_class: dict[str, dict[str, float]]

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    def to_payload(self) -> dict:
        """Plain JSON-encodable dict (canonical-JSON friendly: no NaN,
        floats rounded so the scorecard digest is byte-stable)."""
        return {
            "pattern": self.pattern,
            "requests": self.requests,
            "admitted": self.admitted,
            "shed": dict(sorted(self.shed.items())),
            "completed": self.completed,
            "lost": self.lost,
            "violations": self.violations,
            "p50_ms": round(self.p50_ms, 6),
            "p99_ms": round(self.p99_ms, 6),
            "p999_ms": round(self.p999_ms, 6),
            "queue_wait_p99_ms": round(self.queue_wait_p99_ms, 6),
            "jain": round(self.jain, 6),
            "tenants_seen": self.tenants_seen,
            "peak_queue": self.peak_queue,
            "peak_buckets": self.peak_buckets,
            "per_class": {
                name: {k: (round(v, 6) if isinstance(v, float) else v)
                       for k, v in sorted(stats.items())}
                for name, stats in sorted(self.per_class.items())
            },
        }


class SloTracker:
    """Mutable accounting behind :class:`SloReport`."""

    def __init__(
        self,
        classes: Sequence[PriorityClassConfig],
        registry: MetricsRegistry | None = None,
    ):
        if registry is None or not registry.enabled:
            registry = MetricsRegistry(enabled=True)
        self.registry = registry
        self.classes = tuple(classes)
        self._slo_s = {c.name: c.slo_ms / 1e3 for c in classes}
        self._latency = registry.histogram(
            "service.request.latency_seconds",
            "end-to-end latency (arrival to completion)",
            exact_limit=EXACT_LIMIT,
        )
        self._wait = registry.histogram(
            "service.queue.wait_seconds",
            "admission-queue wait (arrival to dispatch)",
            exact_limit=EXACT_LIMIT,
        )
        self._requests = registry.counter(
            "service.requests", "arrivals offered to admission"
        )
        self._shed = registry.counter("service.shed", "arrivals shed at admission")
        self._completed = registry.counter(
            "service.completed", "requests completed by the fleet"
        )
        self._lost = registry.counter(
            "service.lost", "admitted requests the fleet could not serve"
        )
        self._violations = registry.counter(
            "service.slo.violations", "completions over their class objective"
        )
        self._depth = registry.gauge("service.queue.depth", "admission queue depth")
        self._tenant_completions: dict[int, int] = {}
        self.peak_queue = 0

    # -- event sinks ---------------------------------------------------------

    def on_arrival(self, class_name: str) -> None:
        self._requests.inc(cls=class_name)

    def on_shed(self, class_name: str, reason: str) -> None:
        self._shed.inc(cls=class_name, reason=reason)

    def on_queue_depth(self, depth: int) -> None:
        if depth > self.peak_queue:
            self.peak_queue = depth
        self._depth.set(depth)

    def on_complete(
        self, class_name: str, tenant: int, latency_s: float, wait_s: float, path: str
    ) -> None:
        self._latency.observe(latency_s, cls=class_name)
        self._wait.observe(wait_s, cls=class_name)
        self._completed.inc(cls=class_name, path=path)
        self._tenant_completions[tenant] = self._tenant_completions.get(tenant, 0) + 1
        if latency_s > self._slo_s[class_name]:
            self._violations.inc(cls=class_name)

    def on_lost(self, class_name: str) -> None:
        self._lost.inc(cls=class_name)

    # -- reporting -----------------------------------------------------------

    def _class_count(self, counter, class_name: str, **extra: str) -> int:
        total = 0.0
        for labels, value, _t in counter.samples():
            if labels.get("cls") != class_name:
                continue
            if any(labels.get(k) != v for k, v in extra.items()):
                continue
            total += value
        return int(total)

    def report(self, pattern: str, peak_buckets: int = 0) -> SloReport:
        shed: dict[str, int] = {reason: 0 for reason in SHED_REASONS}
        for labels, value, _t in self._shed.samples():
            reason = labels.get("reason", "unknown")
            shed[reason] = shed.get(reason, 0) + int(value)
        per_class: dict[str, dict[str, float]] = {}
        for cls in self.classes:
            name = cls.name
            per_class[name] = {
                "requests": self._class_count(self._requests, name),
                "completed": self._class_count(self._completed, name),
                "violations": self._class_count(self._violations, name),
                "p99_ms": self._latency.percentile(0.99, cls=name) * 1e3,
            }
        return SloReport(
            pattern=pattern,
            requests=int(self._requests.total()),
            admitted=int(self._requests.total() - self._shed.total()),
            shed=shed,
            completed=int(self._completed.total()),
            lost=int(self._lost.total()),
            violations=int(self._violations.total()),
            p50_ms=self._latency.aggregate_percentile(0.50) * 1e3,
            p99_ms=self._latency.aggregate_percentile(0.99) * 1e3,
            p999_ms=self._latency.aggregate_percentile(0.999) * 1e3,
            queue_wait_p99_ms=self._wait.aggregate_percentile(0.99) * 1e3,
            jain=jain_index(list(self._tenant_completions.values())),
            tenants_seen=len(self._tenant_completions),
            peak_queue=self.peak_queue,
            peak_buckets=peak_buckets,
            per_class=per_class,
        )
