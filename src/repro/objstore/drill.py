"""Object-store cells: dedup ingest and the GC crash drill as hermetic jobs.

Like :mod:`repro.service.drill`, every cell is module-path addressable,
JSON-in / JSON-out, hermetic (the scenario dict is the entire input), so the
parallel runner can cache it and ``--workers N`` produces byte-identical
scorecards.

Three cells:

- :func:`run_objstore_cell` — the headline drill: ingest a half-duplicate
  object batch through in-situ ``chunksum`` minions while the preset's
  fault plan crashes devices, GC while one device is *still down*, GC again
  after recovery, then read every object back and check the crash-recovery
  invariant (no committed chunk lost, accounting identity holds);
- :func:`run_gc_drill_cell` — the reclamation stress: same ingest, then a
  delete wave, a GC pass raced against the crash window, and the orphan
  count after the post-recovery pass (the drill exits non-zero in CI if a
  referenced block ever went missing);
- :func:`run_objstore_sweep_cell` — the fig-style dedup sweep point: one
  ingest at an overridden ``dedup_ratio`` dial, reporting offered vs stored
  bytes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Mapping

from repro.config.codec import scenario_from_dict
from repro.config.schema import ObjstoreConfig, ScenarioConfig

__all__ = [
    "objstore_scenario",
    "run_gc_drill_cell",
    "run_objstore_cell",
    "run_objstore_sweep_cell",
]


def objstore_scenario(config: ScenarioConfig) -> ScenarioConfig:
    """A scenario with its objstore section engaged (defaults filled in)."""
    objstore = config.objstore if config.objstore is not None else ObjstoreConfig()
    return replace(config, objstore=objstore)


def _fault_times_s(config: ScenarioConfig) -> tuple[float, float]:
    """(mid, clear) seconds relative to the armed plan's base time: a point
    inside the *last* fault window, and the moment everything recovered."""
    events = config.faults.events
    if not events:
        return 0.0, 0.0
    last_start = max(e.at_ms for e in events) / 1e3
    clear = max(e.at_ms + (e.duration_ms or 0.0) for e in events) / 1e3
    durations = [e.duration_ms for e in events if e.duration_ms]
    mid = last_start + (min(durations) / 1e3 / 2 if durations else 0.0)
    return mid, clear


def _build(config: ScenarioConfig):
    """Shared setup: fleet, staged corpus, armed faults, dedup store."""
    from repro.config.factory import build_corpus, build_fault_plan, build_fleet
    from repro.faults import FaultInjector
    from repro.objstore.dedup import DedupObjectStore
    from repro.objstore.workload import generate_objects

    fleet = build_fleet(config)
    sim = fleet.sim
    books = build_corpus(config)
    sim.run(sim.process(fleet.stage_corpus(books, replicas=config.fleet.replicas)))
    base = sim.now
    if config.faults.any:
        plan = build_fault_plan(config, fleet.device_ring(), base_time=base)
        FaultInjector.for_fleet(fleet, plan).start()
    oc = config.objstore
    store = DedupObjectStore(fleet, params=oc.params(), replicas=oc.replicas)
    batch = generate_objects(oc.spec())
    return fleet, sim, store, batch, base


def _ingest(sim, store, batch):
    """PUT the whole batch inside one sim process; returns per-key outcomes."""
    from repro.objstore.store import ObjectStoreError

    outcomes: dict[str, int | None] = {}

    def drive():
        for key, payload in batch:
            try:
                recipe = yield from store.put(key, payload)
            except ObjectStoreError:
                outcomes[key] = None  # uncommitted; GC reclaims the partials
            else:
                outcomes[key] = len(recipe)
        return None

    sim.run(sim.process(drive()))
    return outcomes


def _wait_until(sim, at: float) -> None:
    if sim.now < at:
        def nap():
            yield sim.timeout(at - sim.now)
        sim.run(sim.process(nap()))


def _down_now(store) -> list[str]:
    """``node<i>/<device>`` tags for every currently-crashed ring member."""
    return [
        f"node{node_index}/{device}"
        for node_index, device in store.ring
        if store._crashed(node_index, device)
    ]


def _verify_gets(sim, store, batch, outcomes) -> dict:
    """Read every committed object back; byte-compare in functional mode."""
    results = {"ok": 0, "mismatch": 0, "failed": 0}

    def drive():
        from repro.objstore.store import ObjectStoreError

        for key, payload in batch:
            if outcomes.get(key) is None:
                continue
            try:
                data = yield from store.get(key)
            except ObjectStoreError:
                results["failed"] += 1
                continue
            if data is None or data == payload:
                results["ok"] += 1  # None = analytic device, sizes checked
            else:
                results["mismatch"] += 1
        return None

    sim.run(sim.process(drive()))
    return results


def run_objstore_cell(scenario: Mapping[str, Any] | None = None) -> dict:
    """Ingest + GC-under-crash + recovery GC + read-back verification."""
    from repro.config.presets import preset

    config = (
        scenario_from_dict(scenario)
        if scenario is not None
        else preset("objstore-smoke")
    )
    config = objstore_scenario(config)
    fleet, sim, store, batch, base = _build(config)
    outcomes = _ingest(sim, store, batch)
    mid, clear = _fault_times_s(config)
    # first GC races the last crash window: the dead device is skipped and
    # keeps its garbage; the pass must still never touch a referenced block
    _wait_until(sim, base + mid)
    down = _down_now(store)
    gc_mid = sim.run(sim.process(store.gc()))
    _wait_until(sim, base + clear + 1e-4)
    gc_post = sim.run(sim.process(store.gc()))
    gets = _verify_gets(sim, store, batch, outcomes)
    integrity = store.check_integrity()
    committed = sum(1 for v in outcomes.values() if v is not None)
    return {
        "scenario": config.name,
        "objects_offered": len(batch),
        "objects_committed": committed,
        "stats": store.stats.to_payload(),
        "down_during_gc": down,
        "gc_during_crash": gc_mid,
        "gc_after_recovery": gc_post,
        "gets": gets,
        "integrity": integrity,
        "finished_at_ms": round((sim.now - base) * 1e3, 6),
        "ok": bool(
            integrity["ok"] and gets["mismatch"] == 0 and gets["failed"] == 0
        ),
    }


def run_gc_drill_cell(scenario: Mapping[str, Any] | None = None) -> dict:
    """The reclamation stress: ingest, delete a wave, GC mid-crash, recover.

    Every third committed object is deleted before the first GC pass, so
    the sweep has real work while a device is down.  The invariant scored
    (and gated in CI): after the post-recovery pass, no chunk referenced by
    a surviving manifest is missing from every replica — crashes may defer
    reclamation, never cause loss.
    """
    from repro.config.presets import preset
    from repro.objstore.store import ObjectStoreError

    config = (
        scenario_from_dict(scenario)
        if scenario is not None
        else preset("objstore-smoke")
    )
    config = objstore_scenario(config)
    fleet, sim, store, batch, base = _build(config)
    outcomes = _ingest(sim, store, batch)
    committed = [k for k, v in outcomes.items() if v is not None]
    doomed = committed[::3]

    def delete_wave():
        for key in doomed:
            try:
                yield from store.delete(key)
            except ObjectStoreError:  # pragma: no cover - delete is metadata-only
                pass
        return None

    sim.run(sim.process(delete_wave()))
    mid, clear = _fault_times_s(config)
    _wait_until(sim, base + mid)
    down = _down_now(store)
    gc_mid = sim.run(sim.process(store.gc()))
    _wait_until(sim, base + clear + 1e-4)
    gc_post = sim.run(sim.process(store.gc()))
    survivors = {k: v for k, v in outcomes.items() if v is not None and k not in doomed}
    gets = _verify_gets(sim, store, batch, survivors)
    integrity = store.check_integrity()
    # orphans the mid-crash pass could not reach must be gone after recovery
    leftover = sum(
        1
        for node_index, device in store.ring
        for name in store._ssd(node_index, device).fs.listdir()
        if (name.startswith("blk.") and name[len("blk."):] not in store.index)
        or name.startswith("put.")
    )
    return {
        "scenario": config.name,
        "objects_committed": len(committed),
        "objects_deleted": len(doomed),
        "stats": store.stats.to_payload(),
        "down_during_gc": down,
        "gc_during_crash": gc_mid,
        "gc_after_recovery": gc_post,
        "orphans_left": leftover,
        "gets": gets,
        "integrity": integrity,
        "finished_at_ms": round((sim.now - base) * 1e3, 6),
        "ok": bool(
            integrity["ok"]
            and leftover == 0
            and gets["mismatch"] == 0
            and gets["failed"] == 0
        ),
    }


def run_objstore_sweep_cell(
    scenario: Mapping[str, Any] | None = None, dedup_ratio: float = 0.5
) -> dict:
    """One dedup-sweep point: ingest at ``dedup_ratio``, report the bytes.

    The sweep family plots measured ``dedup_ratio`` (offered / stored)
    against the workload dial — the in-storage analogue of the paper's
    figure sweeps, showing chunk+hash offload turning duplicate content
    into PCIe traffic *not* taken.
    """
    from repro.config.presets import preset

    config = (
        scenario_from_dict(scenario)
        if scenario is not None
        else preset("objstore-smoke")
    )
    config = objstore_scenario(config)
    config = replace(
        config, objstore=replace(config.objstore, dedup_ratio=dedup_ratio)
    )
    fleet, sim, store, batch, base = _build(config)
    outcomes = _ingest(sim, store, batch)
    stats = store.stats
    return {
        "scenario": config.name,
        "dial": round(dedup_ratio, 6),
        "objects_committed": sum(1 for v in outcomes.values() if v is not None),
        "offered_bytes": stats.offered_bytes,
        "stored_bytes": stats.stored_bytes,
        "deduped_bytes": stats.deduped_bytes,
        "physical_bytes": stats.physical_bytes,
        "measured_ratio": round(stats.dedup_ratio, 6),
        "chunks": stats.chunks_offered,
        "chunks_deduped": stats.chunks_deduped,
        "host_chunk_fallbacks": stats.host_chunk_fallbacks,
        "finished_at_ms": round((sim.now - base) * 1e3, 6),
    }
