"""Unit tests for the block allocator and write frontiers."""

import pytest

from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import BlockAllocator, OutOfSpaceError
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=1, planes_per_die=1, blocks_per_plane=3, pages_per_block=4,
    page_size=512,
)


def make_allocator():
    sim = Simulator()
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9))
    return sim, flash, BlockAllocator(flash)


def test_initial_free_pool_covers_everything():
    _, _, alloc = make_allocator()
    assert alloc.free_blocks == GEO.blocks
    assert alloc.free_blocks_on_die(0) == GEO.blocks_per_plane


def test_allocate_on_die_is_sequential_within_block():
    _, _, alloc = make_allocator()
    addrs = [alloc.allocate_on_die(BlockAllocator.HOST, 0) for _ in range(GEO.pages_per_block)]
    assert [a.page for a in addrs] == list(range(GEO.pages_per_block))
    assert len({a.block_addr for a in addrs}) == 1


def test_allocate_opens_new_block_when_full():
    _, _, alloc = make_allocator()
    first = [alloc.allocate_on_die(0, 0) for _ in range(GEO.pages_per_block)]
    nxt = alloc.allocate_on_die(0, 0)
    assert nxt.page == 0
    assert nxt.block_addr != first[0].block_addr


def test_allocate_page_rotates_dies():
    _, _, alloc = make_allocator()
    a = alloc.allocate_page(0)
    b = alloc.allocate_page(0)
    die_of = lambda addr: addr.channel * GEO.dies_per_channel + addr.die
    assert die_of(a) != die_of(b)


def test_streams_get_distinct_blocks():
    _, _, alloc = make_allocator()
    host = alloc.allocate_on_die(BlockAllocator.HOST, 0)
    gc = alloc.allocate_on_die(BlockAllocator.GC, 0)
    assert host.block_addr != gc.block_addr


def test_out_of_space_raised_per_die_and_globally():
    sim = Simulator()
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9))
    alloc = BlockAllocator(flash, gc_reserve=0)
    # exhaust die 0: 3 blocks x 4 pages
    for _ in range(GEO.blocks_per_plane * GEO.pages_per_block):
        alloc.allocate_on_die(0, 0)
    with pytest.raises(OutOfSpaceError):
        alloc.allocate_on_die(0, 0)
    # die 1 still works
    alloc.allocate_on_die(0, 1)
    # exhaust die 1 too (minus the one just allocated)
    for _ in range(GEO.blocks_per_plane * GEO.pages_per_block - 1):
        alloc.allocate_on_die(0, 1)
    with pytest.raises(OutOfSpaceError):
        alloc.allocate_page(0)


def test_gc_reserve_blocks_host_but_not_gc():
    _, _, alloc = make_allocator()  # gc_reserve=1 by default
    # consume free blocks with the host stream until only the reserve is left
    opened = 0
    while alloc.free_blocks > 1:
        die = opened % GEO.dies
        for _ in range(GEO.pages_per_block):
            alloc.allocate_on_die(BlockAllocator.HOST, die)
        opened += 1
    with pytest.raises(OutOfSpaceError, match="reserve"):
        # die 1 still has the one remaining (reserved) free block; a host
        # open on it must be refused in favour of GC
        alloc.allocate_on_die(BlockAllocator.HOST, 1)
    # the GC stream can still claim the reserved block (on whichever die)
    got = None
    for die in range(GEO.dies):
        try:
            got = alloc.allocate_on_die(BlockAllocator.GC, die)
            break
        except OutOfSpaceError:
            continue
    assert got is not None


def test_wear_aware_block_selection():
    sim, flash, alloc = make_allocator()
    # age block 0 on die 0 artificially
    flash.pe_cycles[0] = 50
    addr = alloc.allocate_on_die(0, 0)
    block_index = GEO.block_index(addr.block_addr)
    assert block_index != 0  # lowest-PE block preferred


def test_release_block_returns_to_pool():
    _, _, alloc = make_allocator()
    addr = alloc.allocate_on_die(0, 0)
    block_index = GEO.block_index(addr.block_addr)
    before = alloc.free_blocks
    # fill & retire the frontier so the block is closed
    for _ in range(GEO.pages_per_block - 1):
        alloc.allocate_on_die(0, 0)
    alloc.allocate_on_die(0, 0)  # opens a new block
    alloc.release_block(block_index)
    assert alloc.free_blocks == before  # -1 new frontier +1 released


def test_release_open_or_free_block_rejected():
    _, _, alloc = make_allocator()
    addr = alloc.allocate_on_die(0, 0)
    block_index = GEO.block_index(addr.block_addr)
    with pytest.raises(ValueError, match="open frontier"):
        alloc.release_block(block_index)
    free_block = next(iter(alloc.free[0]))
    with pytest.raises(ValueError, match="already free"):
        alloc.release_block(free_block)


def test_closed_blocks_excludes_free_and_open():
    _, _, alloc = make_allocator()
    assert alloc.closed_blocks() == []
    # fill one block completely, opening a second
    for _ in range(GEO.pages_per_block + 1):
        alloc.allocate_on_die(0, 0)
    closed = alloc.closed_blocks()
    assert len(closed) == 1


def test_invalid_arguments():
    _, _, alloc = make_allocator()
    with pytest.raises(ValueError):
        alloc.allocate_on_die(9, 0)
    with pytest.raises(ValueError):
        alloc.allocate_on_die(0, 99)
    with pytest.raises(ValueError):
        BlockAllocator(alloc.flash, streams=0)
