"""Content-defined chunking: rolling-hash boundaries with size bounds.

The dedup store splits object payloads into variable-size chunks whose
boundaries depend on *content*, not offsets, so an insertion early in an
object shifts bytes without shifting every later chunk boundary — the
property that makes digest-based dedup effective (the casstor lineage:
Rabin-fingerprint chunking over Cassandra blobs).

This implementation uses a Gear rolling hash (a 256-entry random table,
one shift-add-lookup per byte — the FastCDC family's hash) with min/avg/max
bounds:

- no boundary before ``min_size`` bytes (the hash is still warming up and
  tiny chunks waste index space);
- a boundary wherever the low ``bits(avg_size)`` bits of the hash are zero
  (expected chunk length ~= ``avg_size``);
- a forced boundary at ``max_size`` (bounds the worst case on
  pathological content such as long runs of one byte).

The hash state resets at every boundary, so chunking is *self-synchronising*:
cutting a payload at any emitted boundary and chunking the halves separately
reproduces exactly the original chunk sequence.  The Hypothesis suite pins
that property (``tests/test_chunking.py``), and the in-situ minion app
(:class:`repro.objstore.apps.ChunkSumApp`) feeds pages through the same
incremental :class:`Chunker`, so device-side and host-side boundaries are
identical by construction.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterator

__all__ = ["ChunkParams", "Chunker", "chunk_digests", "chunk_spans"]

#: Gear table: 256 pinned 64-bit constants.  Seeded stdlib RNG instance —
#: module-load determinism, never the global RNG.
_GEAR_RNG = random.Random(0x9E3779B97F4A7C15)
_GEAR: tuple[int, ...] = tuple(_GEAR_RNG.getrandbits(64) for _ in range(256))
_MASK64 = (1 << 64) - 1


@dataclass(frozen=True, slots=True)
class ChunkParams:
    """Chunking bounds; ``avg_size`` sets the boundary-mask width."""

    min_size: int = 1024
    avg_size: int = 4096
    max_size: int = 16384

    def __post_init__(self) -> None:
        if self.min_size < 1:
            raise ValueError("min_size must be >= 1")
        if not self.min_size <= self.avg_size <= self.max_size:
            raise ValueError("need min_size <= avg_size <= max_size")

    @property
    def mask(self) -> int:
        """Boundary mask: ``avg_size`` as a power-of-two bit width."""
        return (1 << max(1, self.avg_size.bit_length() - 1)) - 1


class Chunker:
    """Incremental content-defined chunker (page-seam safe).

    Feed bytes in any fragmentation via :meth:`update`; each call yields the
    lengths of the chunks completed by those bytes.  :meth:`finish` flushes
    the trailing partial chunk.  Boundary decisions depend only on the bytes
    since the previous boundary, never on fragment sizes, so streaming a
    file page by page produces the same chunks as one whole-buffer pass.
    """

    def __init__(self, params: ChunkParams):
        self.params = params
        self._hash = 0
        self._length = 0

    def update(self, data: bytes) -> Iterator[int]:
        gear = _GEAR
        mask = self.params.mask
        min_size = self.params.min_size
        max_size = self.params.max_size
        h = self._hash
        length = self._length
        for byte in data:
            h = ((h << 1) + gear[byte]) & _MASK64
            length += 1
            if (length >= min_size and (h & mask) == 0) or length >= max_size:
                yield length
                h = 0
                length = 0
        self._hash = h
        self._length = length

    def finish(self) -> int | None:
        """The trailing partial chunk's length (``None`` if flush-aligned)."""
        length = self._length if self._length else None
        self._hash = 0
        self._length = 0
        return length


def chunk_spans(data: bytes, params: ChunkParams) -> list[tuple[int, int]]:
    """``(offset, length)`` spans covering ``data`` exactly, in order."""
    chunker = Chunker(params)
    spans: list[tuple[int, int]] = []
    offset = 0
    for length in chunker.update(data):
        spans.append((offset, length))
        offset += length
    tail = chunker.finish()
    if tail is not None:
        spans.append((offset, tail))
    return spans


def chunk_digests(data: bytes, params: ChunkParams) -> list[tuple[str, int]]:
    """``(sha1_hex, length)`` per chunk — what PUT ships across PCIe."""
    return [
        (hashlib.sha1(data[offset:offset + length]).hexdigest(), length)
        for offset, length in chunk_spans(data, params)
    ]
