#!/usr/bin/env python3
"""Chaos drill: kill a device mid-job and watch the fleet recover.

A replicated fleet (two copies of every book on consecutive ring devices)
runs a scan job while a fault plan crashes one device outright and opens a
transient-error window on another.  The in-situ client retries transport
faults with backoff, the circuit breaker fences off the dead drive, and
the coordinator reroutes its minions to surviving replicas — the job
degrades instead of failing, and the report accounts for every minion:
``completed + recovered + lost == dispatched``.

Run:  python examples/chaos_drill.py
      python -m repro chaos --preset chaos-drill              # CLI twin
"""

from repro.analysis.experiments import format_series_table
from repro.config import (
    build_corpus,
    build_fault_plan,
    build_fleet,
    config_digest,
    preset,
)
from repro.faults import FaultInjector
from repro.proto import Command


def main() -> None:
    # The whole drill — fleet shape, replicas, retry/breaker policy, and
    # the fault schedule itself — is the pinned ``chaos-drill`` preset.
    scenario = preset("chaos-drill")
    print(f"scenario {scenario.name} digest={config_digest(scenario)[:16]}")
    fleet = build_fleet(scenario)
    sim = fleet.sim
    books = build_corpus(scenario)
    sim.run(
        sim.process(fleet.stage_corpus(books, replicas=scenario.fleet.replicas))
    )

    # arm the declarative fault plan: a crash mid-job plus a flaky window
    ring = fleet.device_ring()
    plan = build_fault_plan(scenario, ring, base_time=sim.now)
    print(format_series_table(
        f"fault plan (fingerprint={plan.fingerprint()})",
        ["t (ms)", "kind", "target", "detail"], plan.describe_rows(),
    ))
    injector = FaultInjector.for_fleet(fleet, plan).start()

    def job():
        report = yield from fleet.run_job(
            books, lambda b: Command(command_line=f"grep xylophone {b.name}")
        )
        return report

    report = sim.run(sim.process(job()))
    print(format_series_table(
        "degraded-mode job report", ["attribute", "value"], report.rows()
    ))
    for _, what in injector.applied:
        print(f"  injected: {what}")
    print()

    def poll():
        return (yield from fleet.health())

    health = sim.run(sim.process(poll()))
    print(format_series_table("fleet health", ["attribute", "value"], health.rows()))
    verdict = "lost work!" if report.lost else "no minion was lost"
    print(f"\n{report.recovered} of {report.dispatched} minions rerouted; {verdict}")


if __name__ == "__main__":
    main()
