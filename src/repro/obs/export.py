"""Metric exporters: Prometheus text format and JSON lines.

Both render the same :class:`~repro.obs.metrics.MetricsRegistry` samples;
hierarchical dotted metric names become underscore-joined Prometheus
families (``ftl.gc.collections`` -> ``repro_ftl_gc_collections_total``)
while JSON lines keep the dotted names for downstream slicing.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.metrics import Counter, Histogram, MetricsRegistry, _HistogramState

__all__ = ["to_json_lines", "to_prometheus"]

PROM_PREFIX = "repro"


def _prom_name(name: str, suffix: str = "") -> str:
    flat = name.replace(".", "_").replace("-", "_")
    return f"{PROM_PREFIX}_{flat}{suffix}"


def _escape_label_value(value: str) -> str:
    """Escape per the exposition format: backslash, double-quote, newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus exposition text (one ``# HELP``/``# TYPE`` per family)."""
    lines: list[str] = []
    for instrument in registry.collect():
        samples = instrument.samples()
        if not samples:
            continue
        suffix = "_total" if isinstance(instrument, Counter) else ""
        family = _prom_name(instrument.name, suffix)
        if instrument.help:
            lines.append(f"# HELP {family} {instrument.help}")
        lines.append(f"# TYPE {family} {instrument.kind}")
        if isinstance(instrument, Histogram):
            base = _prom_name(instrument.name)
            for labels, state, _ in samples:
                assert isinstance(state, _HistogramState)
                cumulative = 0
                for bound, count in zip(instrument.buckets, state.bucket_counts):
                    cumulative += count
                    lines.append(
                        f"{base}_bucket{_prom_labels(labels, {'le': _fmt(bound)})}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{base}_bucket{_prom_labels(labels, {'le': '+Inf'})} {state.count}"
                )
                lines.append(f"{base}_sum{_prom_labels(labels)} {_fmt(state.sum)}")
                lines.append(f"{base}_count{_prom_labels(labels)} {state.count}")
        else:
            for labels, value, _ in samples:
                lines.append(f"{family}{_prom_labels(labels)} {_fmt(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json_lines(registry: MetricsRegistry) -> str:
    """One JSON object per sample: name, kind, labels, value(s), sim time."""
    lines: list[str] = []
    for instrument in registry.collect():
        for labels, value, updated in instrument.samples():
            record: dict[str, Any] = {
                "name": instrument.name,
                "kind": instrument.kind,
                "labels": labels,
                "time": updated,
            }
            if isinstance(value, _HistogramState):
                record["count"] = value.count
                record["sum"] = value.sum
                record["max"] = value.max
                record["min"] = value.min if value.count else 0.0
                record["buckets"] = {
                    _fmt(bound): count
                    for bound, count in zip(
                        list(instrument.buckets) + [float("inf")], value.bucket_counts
                    )
                    if count
                }
            else:
                record["value"] = value
            lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")
