"""Unit tests for resources, stores and containers."""

import pytest

from repro.sim import Container, PriorityResource, Resource, Simulator, Store


def test_resource_serializes_access():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def user(tag, hold):
        with res.request() as req:
            yield req
            start = sim.now
            yield sim.timeout(hold)
            spans.append((tag, start, sim.now))

    sim.process(user("a", 2.0))
    sim.process(user("b", 3.0))
    sim.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 5.0)]


def test_resource_capacity_allows_parallelism():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def user(tag):
        with res.request() as req:
            yield req
            yield sim.timeout(1.0)
            done.append((tag, sim.now))

    for tag in "abc":
        sim.process(user(tag))
    sim.run()
    assert done == [("a", 1.0), ("b", 1.0), ("c", 2.0)]


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag, arrive):
        yield sim.timeout(arrive)
        with res.request() as req:
            yield req
            order.append(tag)
            yield sim.timeout(10.0)

    for i, tag in enumerate("abcd"):
        sim.process(user(tag, float(i)))
    sim.run()
    assert order == list("abcd")


def test_resource_release_without_grant_is_safe():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield sim.timeout(5.0)

    def impatient():
        yield sim.timeout(1.0)
        req = res.request()
        req.cancel()  # withdraw before grant
        yield sim.timeout(0.0)

    sim.process(holder())
    sim.process(impatient())
    sim.run()
    assert res.count == 0
    assert len(res.queue) == 0


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_utilization_tracking():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user():
        with res.request() as req:
            yield req
            yield sim.timeout(4.0)

    sim.process(user())
    sim.run(until=8.0)
    assert res.utilization() == pytest.approx(0.5)


def test_priority_resource_orders_by_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def user(tag, prio):
        with res.request(priority=prio) as req:
            yield req
            order.append(tag)
            yield sim.timeout(1.0)

    def setup():
        # occupy the resource, then submit contenders in reverse priority
        with res.request(priority=0) as req:
            yield req
            sim.process(user("low", 9))
            sim.process(user("high", 1))
            sim.process(user("mid", 5))
            yield sim.timeout(1.0)

    sim.process(setup())
    sim.run()
    assert order == ["high", "mid", "low"]


def test_priority_resource_fifo_within_level():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def user(tag):
        with res.request(priority=3) as req:
            yield req
            order.append(tag)
            yield sim.timeout(1.0)

    def setup():
        with res.request(priority=0) as req:
            yield req
            for tag in "xyz":
                sim.process(user(tag))
            yield sim.timeout(1.0)

    sim.process(setup())
    sim.run()
    assert order == list("xyz")


def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield sim.timeout(1.0)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((sim.now, item))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [(0.0, 0), (1.0, 1), (2.0, 2)]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(5.0)
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(5.0, "late")]


def test_store_bounded_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(("a-in", sim.now))
        yield store.put("b")
        times.append(("b-in", sim.now))

    def consumer():
        yield sim.timeout(3.0)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert times == [("a-in", 0.0), ("b-in", 3.0)]


def test_store_filtered_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for item in ("apple", "banana", "avocado"):
            yield store.put(item)

    def consumer():
        item = yield store.get(filter=lambda s: s.startswith("b"))
        got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == ["banana"]
    assert list(store.items) == ["apple", "avocado"]


def test_store_filtered_get_waits_for_match():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get(filter=lambda x: x == "target")
        got.append((sim.now, item))

    def producer():
        yield store.put("noise")
        yield sim.timeout(2.0)
        yield store.put("target")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(2.0, "target")]
    assert list(store.items) == ["noise"]


def test_container_get_blocks_until_level():
    sim = Simulator()
    tank = Container(sim, capacity=10.0)
    got = []

    def consumer():
        amount = yield tank.get(6.0)
        got.append((sim.now, amount))

    def producer():
        yield sim.timeout(1.0)
        yield tank.put(4.0)
        yield sim.timeout(1.0)
        yield tank.put(4.0)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(2.0, 6.0)]
    assert tank.level == pytest.approx(2.0)


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    tank = Container(sim, capacity=5.0, init=5.0)
    times = []

    def producer():
        yield tank.put(2.0)
        times.append(sim.now)

    def consumer():
        yield sim.timeout(4.0)
        yield tank.get(3.0)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert times == [4.0]


def test_container_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=0)
    with pytest.raises(ValueError):
        Container(sim, capacity=1.0, init=2.0)
    tank = Container(sim, capacity=1.0)
    with pytest.raises(ValueError):
        tank.get(0)
    with pytest.raises(ValueError):
        tank.put(-1)


def test_interrupt_while_queued_releases_request():
    """A process interrupted while waiting for a resource (inside the
    `with request()` context) must not leak its queue slot."""
    from repro.sim import Interrupt

    sim = Simulator()
    res = Resource(sim, capacity=1)
    outcome = []

    def holder():
        with res.request() as req:
            yield req
            yield sim.timeout(10.0)

    def victim():
        try:
            with res.request() as req:
                yield req  # still queued when the interrupt lands
                outcome.append("granted")
        except Interrupt:
            outcome.append("interrupted")

    def attacker(target):
        yield sim.timeout(1.0)
        target.interrupt()

    sim.process(holder())
    v = sim.process(victim())
    sim.process(attacker(v))
    sim.run()
    assert outcome == ["interrupted"]
    assert len(res.queue) == 0  # no orphaned request
    assert res.count == 0  # holder released; nothing leaked


def test_interrupt_while_holding_releases_slot():
    from repro.sim import Interrupt

    sim = Simulator()
    res = Resource(sim, capacity=1)

    def victim():
        try:
            with res.request() as req:
                yield req
                yield sim.timeout(100.0)
        except Interrupt:
            pass

    def attacker(target):
        yield sim.timeout(1.0)
        target.interrupt()

    v = sim.process(victim())
    sim.process(attacker(v))
    sim.run()
    assert res.count == 0  # slot returned on unwind


def test_priority_resource_interrupted_waiter_skipped():
    from repro.sim import Interrupt

    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        with res.request(priority=0) as req:
            yield req
            yield sim.timeout(5.0)

    def waiter(tag, prio):
        try:
            with res.request(priority=prio) as req:
                yield req
                order.append(tag)
                yield sim.timeout(1.0)
        except Interrupt:
            order.append(f"{tag}-killed")

    def attacker(target):
        yield sim.timeout(1.0)
        target.interrupt()

    sim.process(holder())
    first = sim.process(waiter("first", 1))
    sim.process(waiter("second", 2))
    sim.process(attacker(first))
    sim.run()
    assert order == ["first-killed", "second"]
