"""Content-addressed result cache for experiment jobs.

A cache entry is keyed on ``sha256(code_digest + spec_digest)``:

* the **code digest** hashes every ``repro`` package source file (name and
  bytes) plus the Python minor version and the zlib runtime version (the
  compression apps' output depends on it), so *any* source change
  invalidates *every* entry — coarse, but it can never serve a stale
  result for changed model code;
* the **spec digest** hashes the job's name, target, kwargs, and seed.

Entries live under ``$REPRO_CACHE_DIR`` (default ``<repo>/.repro-cache``),
one JSON file per key, written atomically so a killed run never leaves a
half-entry behind.  Cached values are byte-identical to freshly computed
ones — both sides of the comparison are the canonical JSON round-trip in
:mod:`repro.parallel.jobs` — which is what lets ``validate`` reuse them
without perturbing the scorecard.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import zlib
from functools import lru_cache
from pathlib import Path

from repro.parallel.jobs import JobResult, JobSpec

__all__ = ["ResultCache", "code_digest", "default_cache_dir"]

CACHE_SCHEMA = "repro.parallel.cache.v1"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``<repo>/.repro-cache``."""
    configured = os.environ.get(ENV_CACHE_DIR)
    if configured:
        return Path(configured)
    from repro.parallel.jobs import repo_root

    return repo_root() / ".repro-cache"


@lru_cache(maxsize=1)
def code_digest() -> str:
    """Hash of the entire ``repro`` package source (the invalidation rule)."""
    import repro

    package_dir = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    digest.update(f"python={sys.version_info[0]}.{sys.version_info[1]}".encode())
    digest.update(f"|zlib={zlib.ZLIB_RUNTIME_VERSION}|".encode())
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(path.relative_to(package_dir).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class ResultCache:
    """Filesystem-backed, content-addressed store of :class:`JobResult`\\ s."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def key(self, spec: JobSpec) -> str:
        return hashlib.sha256((code_digest() + spec.digest()).encode()).hexdigest()

    def path(self, spec: JobSpec) -> Path:
        key = self.key(spec)
        return self.root / key[:2] / f"{key}.json"

    def load(self, spec: JobSpec) -> JobResult | None:
        """The cached result, or ``None`` on miss/corruption (never raises)."""
        path = self.path(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("schema") != CACHE_SCHEMA or payload.get("name") != spec.name:
            return None
        return JobResult(
            name=spec.name,
            value=payload["value"],
            digest=payload["digest"],
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            cached=True,
        )

    def store(self, spec: JobSpec, result: JobResult) -> Path:
        """Persist one successful result (atomic write-then-rename)."""
        if result.error is not None:
            raise ValueError("refusing to cache a failed job")
        path = self.path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "name": spec.name,
            "target": spec.target,
            "digest": result.digest,
            "value": result.value,
            "wall_seconds": result.wall_seconds,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        tmp.replace(path)
        return path
