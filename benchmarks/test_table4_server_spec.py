"""Table IV — server specification.

Xeon E5-2620 v4 host, 32 GB DDR4, Ubuntu, an off-the-shelf NVMe SSD on one
server and the 24 TB CompStor on the other.  Verified against the built
system plus the full-scale prototype geometry.
"""

from repro.analysis.experiments import format_series_table
from repro.cluster import StorageNode
from repro.ssd import PROTOTYPE_CAPACITY_BYTES, prototype_geometry


def test_table4_server_spec(benchmark):
    def build():
        node = StorageNode.build(
            devices=1, device_capacity=16 * 1024 * 1024, with_baseline_ssd=True
        )
        return node.describe()

    info = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n" + format_series_table(
        "Table IV — server specification",
        ["component", "value"],
        [
            ["CPU", info["host"]["cpu"]],
            ["memory", f"{info['host']['memory_gib']} GB DDR4"],
            ["OS", info["host"]["operating_system"]],
            ["off-the-shelf SSD", info["baseline_ssd"]["name"]],
            ["in-situ SSD", info["devices"][0]["name"]],
        ],
    ))

    assert "E5-2620 v4" in info["host"]["cpu"]
    assert info["host"]["memory_gib"] == 32
    assert info["devices"][0]["isc"] is True
    assert info["baseline_ssd"]["isc"] is False

    # the 24 TB prototype geometry really holds 24 TB
    geo = prototype_geometry()
    assert abs(geo.capacity_bytes - PROTOTYPE_CAPACITY_BYTES) / PROTOTYPE_CAPACITY_BYTES < 0.01
    assert geo.channels == 16
