"""Simulator wall-clock regression guard.

Compares measured ``events_per_sec`` on the pinned ``small`` scenario
against the committed baseline (``BENCH_sim.json``, written by
``python -m repro bench``).  A regression of more than 25% fails; when no
baseline has been recorded (fresh clone, or a host that never ran the
bench) the guard skips rather than guessing.

Wall-clock measurements on shared CI hosts are noisy, so a miss is
confirmed before failing: the scenario is re-measured once with more
repetitions and only a repeated miss is reported.  The schedule itself is
deterministic (see ``tests/test_golden_schedules.py``), so only host speed
varies between runs.
"""

from __future__ import annotations

import pytest

from repro.analysis.perf import SCENARIOS, load_bench_json, run_scenario

#: events/sec may drop to 75% of baseline before this guard trips.
REGRESSION_FLOOR = 0.75


def test_events_per_sec_within_regression_budget():
    baseline = load_bench_json()
    if baseline is None:
        pytest.skip("no BENCH_sim.json baseline recorded (run: python -m repro bench)")
    recorded = baseline["scenarios"].get("small")
    if recorded is None:
        pytest.skip("baseline has no 'small' scenario; re-record with python -m repro bench")

    floor = recorded["events_per_sec"] * REGRESSION_FLOOR
    result = run_scenario(SCENARIOS["small"], repeat=3)
    # Schedule determinism cross-check first: if the event count drifted,
    # the schedule changed and events/sec is not comparable at all.
    assert result.events == recorded["events"], (
        f"event count drifted ({result.events} vs {recorded['events']}): the "
        f"schedule changed, so events/sec is not comparable — re-record the "
        f"baseline and explain the drift"
    )
    if result.events_per_sec < floor:
        # One retry with more repetitions: a single slow reading on a busy
        # host is noise; a repeated one is a regression.
        result = run_scenario(SCENARIOS["small"], repeat=5)
    assert result.events_per_sec >= floor, (
        f"simulator throughput regressed: {result.events_per_sec:,.0f} events/s "
        f"vs baseline {recorded['events_per_sec']:,.0f} (floor {floor:,.0f}); "
        f"re-record BENCH_sim.json if a model change made schedules heavier"
    )
