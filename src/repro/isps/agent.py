"""The ISPS agent daemon.

"A daemon running on CompStor which is responsible for receiving minions
from clients and spawning in-storage processes based on the command inside
the received minions.  The daemon populates the response fields of the
minion and sends it back to the client after task completion."

The agent registers itself as the NVMe controller's ISC handler, so minions
and queries arrive through the same wire as storage traffic — but execute on
the ISPS's own cores.  Each NVMe worker invocation runs independently, so
several concurrent minions naturally share the quad-A53 through the OS
scheduler.

Trace kinds emitted per minion reproduce the paper's Table III lifetime:
``minion.received`` (step 2), ``minion.spawned`` (2), the driver's flash
traffic (3-4), ``minion.tracked`` (5), ``minion.responded`` (6).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.isos.process import ProcessState
from repro.isps.subsystem import InSituProcessingSubsystem
from repro.sim.core import Interrupt
from repro.isps.telemetry import TelemetrySnapshot
from repro.nvme.commands import Opcode
from repro.proto.entities import Minion, Query, QueryKind, Response, ResponseStatus
from repro.sim import Simulator, Tracer
from repro.sim.trace import NULL_TRACER

__all__ = ["IspsAgent"]


class IspsAgent:
    """Receives minions/queries, spawns processes, returns responses."""

    def __init__(
        self,
        sim: Simulator,
        isps: InSituProcessingSubsystem,
        device_name: str = "compstor",
        tracer: Tracer | None = None,
        track_interval: float = 10e-3,
    ):
        self.sim = sim
        self.isps = isps
        self.device_name = device_name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.track_interval = track_interval
        self.minions_served = 0
        self.queries_served = 0
        self.active_minions = 0

    # -- NVMe ISC dispatch ---------------------------------------------------
    def handle(self, opcode: Opcode, body: Any) -> Generator:
        """Entry point registered with :meth:`NvmeController.register_isc_handler`."""
        if opcode == Opcode.ISC_MINION:
            if not isinstance(body, Minion):
                raise TypeError(f"ISC_MINION payload must be a Minion, got {type(body)}")
            result = yield from self._serve_minion(body)
            return result
        if opcode == Opcode.ISC_QUERY:
            if not isinstance(body, Query):
                raise TypeError(f"ISC_QUERY payload must be a Query, got {type(body)}")
            result = yield from self._serve_query(body)
            return result
        if opcode == Opcode.ISC_LOAD:
            result = yield from self._serve_load(body)
            return result
        raise ValueError(f"agent cannot handle opcode {opcode!r}")

    # -- minions -----------------------------------------------------------
    def _serve_minion(self, minion: Minion) -> Generator:
        command = minion.command
        self.tracer.emit(
            self.sim.now, f"{self.device_name}.agent", "minion.received",
            minion=minion.minion_id, command=command.command_line or "<script>",
        )
        self.active_minions += 1
        started = self.sim.now
        try:
            response = yield from self._execute(minion)
        finally:
            self.active_minions -= 1
        response.execution_seconds = self.sim.now - started
        response.device = self.device_name
        minion.response = response
        minion.completed_at = self.sim.now
        self.minions_served += 1
        self.tracer.emit(
            self.sim.now, f"{self.device_name}.agent", "minion.responded",
            minion=minion.minion_id, status=response.status.value,
        )
        return minion

    def _execute(self, minion: Minion) -> Generator:
        command = minion.command
        os_ = self.isps.os
        # validate the data contract before spawning
        missing = [f for f in command.input_files if not os_.fs.exists(f)]
        if missing:
            return Response(
                status=ResponseStatus.REJECTED,
                exit_code=-1,
                stdout=f"missing input files: {missing}".encode(),
            )
        try:
            if command.script:
                process = None
                results = yield from self._run_script_tracked(command)
                status = results[-1][1] if results else None
                exit_code = status.code if status else -1
                stdout = status.stdout if status else b""
                detail = dict(status.detail) if status else {}
                detail["script_steps"] = len(results)
            else:
                process = os_.spawn(command.command_line, priority=command.priority)
                self.tracer.emit(
                    self.sim.now, f"{self.device_name}.agent", "minion.spawned",
                    minion=minion.minion_id, pid=process.pid,
                )
                self.sim.process(self._track(minion, process), name="agent.tracker")
                if command.timeout_seconds > 0:
                    self.sim.process(
                        self._watchdog(process, command.timeout_seconds),
                        name="agent.watchdog",
                    )
                status = yield from os_.wait(process)
                exit_code = status.code
                stdout = status.stdout
                detail = dict(status.detail)
        except KeyError as exc:
            return Response(
                status=ResponseStatus.REJECTED, exit_code=-1, stdout=str(exc).encode()
            )
        except Interrupt:
            return Response(
                status=ResponseStatus.TIMEOUT,
                exit_code=-1,
                stdout=f"killed after {command.timeout_seconds}s".encode(),
            )
        except Exception as exc:  # executable crashed
            return Response(
                status=ResponseStatus.CRASHED, exit_code=-1, stdout=repr(exc).encode()
            )
        status_kind = ResponseStatus.OK if exit_code == 0 else ResponseStatus.APP_ERROR
        return Response(
            status=status_kind, exit_code=exit_code, stdout=stdout, detail=detail
        )

    def _run_script_tracked(self, command) -> Generator:
        results = yield from self.isps.os.run_script(command.script, priority=command.priority)
        return results

    def _watchdog(self, process, timeout_seconds: float) -> Generator:
        """Kill a runaway task: SIGKILL as an interrupt into its process."""
        yield self.sim.timeout(timeout_seconds)
        if process.state == ProcessState.RUNNING:
            process.sim_process.interrupt("agent watchdog timeout")
        return None

    def _track(self, minion: Minion, process) -> Generator:
        """Step 5 of Table III: the agent keeps track of in-situ status."""
        while process.state == ProcessState.RUNNING:
            self.tracer.emit(
                self.sim.now, f"{self.device_name}.agent", "minion.tracked",
                minion=minion.minion_id, pid=process.pid,
                utilization=self.isps.cluster.utilization(),
            )
            yield self.sim.timeout(self.track_interval)
        return None

    # -- queries -----------------------------------------------------------
    def _serve_query(self, query: Query) -> Generator:
        yield self.sim.timeout(50e-6)  # agent wakeup + admin handling
        if query.kind == QueryKind.STATUS:
            query.reply = self.telemetry()
        elif query.kind == QueryKind.LIST_EXECUTABLES:
            query.reply = self.isps.os.registry.installed()
        elif query.kind == QueryKind.LIST_FILES:
            query.reply = self.isps.os.fs.listdir()
        elif query.kind == QueryKind.PING:
            query.reply = "pong"
        elif query.kind == QueryKind.LOAD_EXECUTABLE:
            self.isps.os.install_executable(query.payload)
            query.reply = f"loaded {query.payload.name}"
        else:  # pragma: no cover - exhaustive over QueryKind
            raise ValueError(f"unknown query kind {query.kind}")
        self.queries_served += 1
        return query

    def _serve_load(self, executable) -> Generator:
        yield self.sim.timeout(200e-6)  # image transfer/installation overhead
        self.isps.os.install_executable(executable)
        self.queries_served += 1
        return f"loaded {executable.name}"

    def telemetry(self) -> TelemetrySnapshot:
        os_ = self.isps.os
        return TelemetrySnapshot(
            device=self.device_name,
            time=self.sim.now,
            core_utilization=os_.utilization(),
            temperature_c=os_.temperature_c(),
            running_processes=os_.running_processes(),
            active_minions=self.active_minions,
            uptime=os_.uptime(),
            free_bytes=os_.fs.free_bytes,
        )
