"""Virtual-time weighted fair queuing over priority classes.

The admission queue is not FIFO: each admitted request is stamped with a
WFQ *finish tag* ``max(V, last_finish[class]) + cost / weight`` and the
dispatcher always pops the smallest tag.  Classes with larger weights
accumulate virtual time more slowly per request, so under contention a
class with weight 4 drains ~4x as many requests as a class with weight 1
— the textbook fluid-fair approximation.

Determinism: ties on the finish tag are broken by a monotonically
increasing push sequence number, so the pop order is a pure function of
the push order — never of hash order or float noise.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Mapping

__all__ = ["WeightedFairQueue"]


class WeightedFairQueue:
    """A single shared queue with per-class weighted fair ordering."""

    def __init__(self, weights: Mapping[str, float]):
        if not weights:
            raise ValueError("need at least one class weight")
        for name, weight in weights.items():
            if weight <= 0:
                raise ValueError(f"class {name!r} weight must be positive")
        self._weights = dict(weights)
        self._virtual = 0.0  # system virtual time V
        self._last_finish = {name: 0.0 for name in weights}
        self._heap: list[tuple[float, int, str, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def classes(self) -> Iterable[str]:
        return self._weights.keys()

    def push(self, class_name: str, item: Any, cost: float = 1.0) -> float:
        """Enqueue ``item`` under ``class_name``; returns its finish tag."""
        weight = self._weights[class_name]
        if cost <= 0:
            raise ValueError("cost must be positive")
        start = max(self._virtual, self._last_finish[class_name])
        finish = start + cost / weight
        self._last_finish[class_name] = finish
        heapq.heappush(self._heap, (finish, self._seq, class_name, item))
        self._seq += 1
        return finish

    def pop(self) -> tuple[str, Any]:
        """Dequeue the smallest-finish-tag request as ``(class, item)``.

        Popped tags are nondecreasing (each class's tags increase, and the
        heap always yields the global minimum), so advancing V to the
        popped tag keeps virtual time monotonic.
        """
        if not self._heap:
            raise IndexError("pop from empty WeightedFairQueue")
        finish, _seq, class_name, item = heapq.heappop(self._heap)
        if finish > self._virtual:
            self._virtual = finish
        return class_name, item
