"""Dotted-path scenario overrides: the ``--set`` grammar.

``--set fleet.nodes=8 --set ftl.gc_policy=cost-benefit`` turns one preset
into a sweep cell without a line of Python.  Values are coerced by the
*declared field type* (int/float/bool/str, optionals, string tuples), so a
typo'd key or an un-coercible value is a :class:`ConfigError` naming the
valid fields — never a silently-ignored kwarg.

Optional sub-configs instantiate on demand: ``--set retry.max_attempts=2``
on a scenario with ``retry=None`` first materialises the default
:class:`~repro.faults.retry.RetryPolicy`, then sets the field.  ``--set
retry=none`` clears it again.  Structured lists (``faults.events``) accept
inline JSON.
"""

from __future__ import annotations

import dataclasses
import json
import types
import typing
from typing import Any, Iterable

from repro.config.codec import ConfigError, _decode, _type_hints

__all__ = ["apply_overrides", "parse_assignments"]

_TRUE = frozenset({"true", "1", "yes", "on"})
_FALSE = frozenset({"false", "0", "no", "off"})
_NONE = frozenset({"none", "null"})


def parse_assignments(pairs: Iterable[str]) -> list[tuple[str, str]]:
    """``["a.b=1", ...]`` -> ``[("a.b", "1"), ...]`` (order preserved)."""
    out = []
    for raw in pairs:
        key, sep, value = raw.partition("=")
        if not sep or not key.strip():
            raise ConfigError(f"override {raw!r} is not of the form path=value")
        out.append((key.strip(), value.strip()))
    return out


def apply_overrides(config: Any, pairs: Iterable[str | tuple[str, str]]) -> Any:
    """Return ``config`` with every ``path=value`` override applied in order."""
    assignments = [
        pair if isinstance(pair, tuple) else parse_assignments([pair])[0]
        for pair in pairs
    ]
    for path, raw in assignments:
        config = _apply_one(config, path.split("."), raw, path)
    return config


def _apply_one(node: Any, segments: list[str], raw: str, full_path: str) -> Any:
    cls = type(node)
    names = [f.name for f in dataclasses.fields(cls)]
    head = segments[0]
    if head not in names:
        raise ConfigError(
            f"unknown key {full_path!r}: {cls.__name__} has no field {head!r}; "
            f"valid keys: {', '.join(names)}"
        )
    hints = _type_hints(cls)
    hint = hints[head]
    if len(segments) == 1:
        value = _coerce(hint, raw, full_path)
        try:
            return dataclasses.replace(node, **{head: value})
        except ValueError as exc:
            raise ConfigError(f"{full_path}={raw!r}: {exc}") from exc
    child_cls = _section_type(hint)
    if child_cls is None:
        raise ConfigError(
            f"{full_path!r}: {head!r} is a {_name(hint)} leaf, not a section"
        )
    child = getattr(node, head)
    if child is None:
        child = child_cls()  # materialise an optional section on demand
    new_child = _apply_one(child, segments[1:], raw, full_path)
    return dataclasses.replace(node, **{head: new_child})


def _section_type(hint: Any) -> type | None:
    """The dataclass type behind a (possibly optional) section field."""
    if dataclasses.is_dataclass(hint):
        return hint
    if typing.get_origin(hint) in (typing.Union, types.UnionType):
        concrete = [a for a in typing.get_args(hint) if a is not type(None)]
        if len(concrete) == 1 and dataclasses.is_dataclass(concrete[0]):
            return concrete[0]
    return None


def _name(hint: Any) -> str:
    return getattr(hint, "__name__", str(hint))


def _coerce(hint: Any, raw: str, path: str) -> Any:
    origin = typing.get_origin(hint)
    if origin in (typing.Union, types.UnionType):
        args = typing.get_args(hint)
        if raw.lower() in _NONE and type(None) in args:
            return None
        concrete = [a for a in args if a is not type(None)]
        if len(concrete) != 1:
            raise ConfigError(f"{path}: unsupported union type {hint}")
        return _coerce(concrete[0], raw, path)
    if dataclasses.is_dataclass(hint):
        raise ConfigError(
            f"{path}: is a section; set one of its fields "
            f"({', '.join(f.name for f in dataclasses.fields(hint))})"
        )
    if origin is tuple:
        elem = typing.get_args(hint)[0]
        if raw.startswith("["):  # inline JSON for structured lists
            try:
                data = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ConfigError(f"{path}: invalid JSON list: {exc}") from exc
            return _decode(hint, data, path)
        parts = [p.strip() for p in raw.split(",") if p.strip()]
        return tuple(_coerce(elem, part, path) for part in parts)
    if hint is bool:
        lowered = raw.lower()
        if lowered in _TRUE:
            return True
        if lowered in _FALSE:
            return False
        raise ConfigError(f"{path}: expected a boolean, got {raw!r}")
    if hint is int:
        try:
            return int(raw)
        except ValueError as exc:
            raise ConfigError(f"{path}: expected an integer, got {raw!r}") from exc
    if hint is float:
        try:
            return float(raw)
        except ValueError as exc:
            raise ConfigError(f"{path}: expected a number, got {raw!r}") from exc
    if hint is str:
        return raw
    raise ConfigError(f"{path}: unsupported field type {hint}")
