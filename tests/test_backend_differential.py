"""Device backends must be invisible to minion computation.

The same staged corpus and the same commands run once against the
page-mapped FTL and once against the zoned (ZNS) backend: every minion's
status and stdout must match byte for byte.  The backend is a *storage*
axis — it changes where pages land, how GC reclaims space, and therefore
timing — but never *what* is computed.  The scorecard digests the
``backends`` verb prints are pinned in ``tests/golden_backend_digests.txt``
so CI notices when either backend's observable behaviour moves.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.backends import BACKEND_APPS, backend_cell
from repro.parallel import payload_digest

GOLDEN_PATH = Path(__file__).parent / "golden_backend_digests.txt"
BACKENDS = ("page", "zoned")


@pytest.fixture(scope="module")
def cells():
    """All comparison cells on the default smoke scenario, verb order."""
    return [
        backend_cell(backend, app)
        for backend in BACKENDS
        for app in BACKEND_APPS
    ]


def _by(cells, backend, app):
    return next(c for c in cells if c["backend"] == backend and c["app"] == app)


def test_minion_results_are_backend_independent(cells):
    for app in BACKEND_APPS:
        page = _by(cells, "page", app)
        zoned = _by(cells, "zoned", app)
        assert page["minions"] == zoned["minions"]
        assert page["output_digest"] == zoned["output_digest"], (
            f"{app}: minion output depends on the device backend"
        )


def test_zoned_cells_report_zone_telemetry(cells):
    for app in BACKEND_APPS:
        zoned = _by(cells, "zoned", app)
        zones = zoned["zones"]
        assert zones["per_device"] >= 3
        assert zones["resets"] >= 0 and zones["retired"] == 0
        assert "zones" not in _by(cells, "page", app)


def test_backend_cell_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown device backend"):
        backend_cell("hybrid", "grep")


def test_scorecard_digests_match_golden(cells):
    """Recompute the ``backends`` verb's digest lines and diff the golden.

    The golden file is the exact trailing digest lines of
    ``python -m repro backends`` on the default smoke cell set; re-pin it
    (and explain the drift) whenever backend-observable behaviour changes.
    """
    lines = [
        f"{backend} digest="
        + payload_digest([c for c in cells if c["backend"] == backend])
        for backend in BACKENDS
    ]
    lines.append(f"scorecard digest={payload_digest(cells)}")
    golden = GOLDEN_PATH.read_text().splitlines()
    assert lines == golden, (
        "backend scorecard digests drifted from tests/golden_backend_digests.txt; "
        "re-pin with: python -m repro backends (trailing digest lines)"
    )
