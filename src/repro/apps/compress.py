"""Compression / decompression applications (gzip, bzip2 families).

Functional mode really compresses with :mod:`zlib` / :mod:`bz2` (streamed
through compressor objects, page at a time), so compression ratios in the
experiments are genuine properties of the synthetic corpus.  Analytic mode
allocates output using the calibrated ratio without moving bytes.

Cycle costs are charged per *input* byte, matching how the paper normalises
Fig. 8 per gigabyte of data.
"""

from __future__ import annotations

import bz2
import zlib
from typing import Generator

from repro.analysis.calibration import ANALYTIC_COMPRESSION_RATIO
from repro.apps.base import StreamingApp
from repro.isos.loader import ExecContext, ExitStatus

__all__ = ["Bunzip2App", "Bzip2App", "GunzipApp", "GzipApp"]


class _CompressApp(StreamingApp):
    """Shared body for gzip/bzip2 compressors."""

    suffix = ".z"
    family = "zlib"

    def begin(self, ctx: ExecContext) -> None:
        self._out: list[bytes] = []
        self._compressor = self._make_compressor()
        self._analytic = False

    def _make_compressor(self):
        if self.family == "zlib":
            return zlib.compressobj(6)
        return bz2.BZ2Compressor(9)

    def consume(self, ctx: ExecContext, chunk: bytes | None, take: int) -> None:
        if chunk is None:
            self._analytic = True
            return
        self._out.append(self._compressor.compress(chunk))

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        out_name = path + self.suffix
        if self._analytic:
            out_size = max(1, int(total_bytes * ANALYTIC_COMPRESSION_RATIO[self.name]))
            yield from ctx.write_file(out_name, None, size=out_size)
        else:
            self._out.append(self._compressor.flush())
            blob = b"".join(self._out)
            out_size = len(blob)
            yield from ctx.write_file(out_name, blob)
        ratio = out_size / total_bytes if total_bytes else 0.0
        return ExitStatus(
            code=0,
            stdout=out_name.encode(),
            detail={"input_bytes": total_bytes, "output_bytes": out_size, "ratio": ratio},
        )


class GzipApp(_CompressApp):
    """``gzip FILE`` -> FILE.gz (original kept, like ``gzip -k``)."""

    name = "gzip"
    suffix = ".gz"
    family = "zlib"


class Bzip2App(_CompressApp):
    """``bzip2 FILE`` -> FILE.bz2 (original kept)."""

    name = "bzip2"
    suffix = ".bz2"
    family = "bz2"


class _DecompressApp(StreamingApp):
    """Shared body for gunzip/bunzip2."""

    suffix = ".z"
    family = "zlib"

    def begin(self, ctx: ExecContext) -> None:
        self._out: list[bytes] = []
        self._decompressor = (
            zlib.decompressobj() if self.family == "zlib" else bz2.BZ2Decompressor()
        )
        self._analytic = False

    def consume(self, ctx: ExecContext, chunk: bytes | None, take: int) -> None:
        if chunk is None:
            self._analytic = True
            return
        self._out.append(self._decompressor.decompress(chunk))

    def output_name(self, path: str) -> str:
        if path.endswith(self.suffix):
            return path[: -len(self.suffix)]
        return path + ".out"

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        out_name = self.output_name(path)
        if self._analytic:
            ratio = ANALYTIC_COMPRESSION_RATIO[self.compress_name]
            out_size = max(1, int(total_bytes / ratio))
            yield from ctx.write_file(out_name, None, size=out_size)
        else:
            blob = b"".join(self._out)
            out_size = len(blob)
            yield from ctx.write_file(out_name, blob)
        return ExitStatus(
            code=0,
            stdout=out_name.encode(),
            detail={"input_bytes": total_bytes, "output_bytes": out_size},
        )

    compress_name = "gzip"


class GunzipApp(_DecompressApp):
    """``gunzip FILE.gz`` -> FILE."""

    name = "gunzip"
    suffix = ".gz"
    family = "zlib"
    compress_name = "gzip"


class Bunzip2App(_DecompressApp):
    """``bunzip2 FILE.bz2`` -> FILE."""

    name = "bunzip2"
    suffix = ".bz2"
    family = "bz2"
    compress_name = "bzip2"
