"""Property-based tests for the simulation kernel's ordering invariants.

The hot-path optimization work (pre-bound heap functions, inlined dispatch
loops, flattened constructors) must never change *what* the kernel computes,
only how fast.  These properties pin the contract the golden-schedule tests
observe end-to-end, at the kernel level where a violation is easiest to
localise:

* dispatch order is exactly ``(time, priority, sequence)`` — URGENT beats
  NORMAL at the same timestamp, and insertion order breaks every remaining
  tie (never object identity or heap internals);
* ``AllOf`` fires at the latest constituent with every value collected;
  ``AnyOf`` fires at the earliest constituent;
* ``Resource`` grants are FIFO; ``PriorityResource`` grants are ordered by
  ``(priority, arrival)``; ``Store`` preserves FIFO under any producer/
  consumer interleaving.

Hypothesis runs derandomized (see ``conftest.py``) so failures reproduce.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.sim import PriorityResource, Resource, Simulator, Store
from repro.sim.core import NORMAL, URGENT

# Discrete microsecond-scale delays keep float arithmetic exact enough for
# equality assertions while still exercising the heap across many orders.
_TICK = 1e-6


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.sampled_from([URGENT, NORMAL])),
        min_size=1,
        max_size=30,
    )
)
def test_dispatch_order_is_time_priority_sequence(entries):
    """Events fire sorted by (time, priority), FIFO within a tie."""
    sim = Simulator()
    fired: list[int] = []
    for idx, (ticks, priority) in enumerate(entries):
        ev = sim.event(name=f"e{idx}")
        ev.callbacks.append(lambda _ev, i=idx: fired.append(i))
        sim._schedule(ev, ticks * _TICK, priority)
    sim.run()
    expected = [
        idx
        for idx, _ in sorted(
            enumerate(entries), key=lambda item: (item[1][0], item[1][1], item[0])
        )
    ]
    assert fired == expected


@given(st.lists(st.integers(0, 1000), min_size=0, max_size=15))
def test_all_of_gathers_every_value_at_latest_delay(ticks):
    sim = Simulator()
    delays = [t * _TICK for t in ticks]

    def job():
        timeouts = [sim.timeout(d, value=i) for i, d in enumerate(delays)]
        result = yield sim.all_of(timeouts)
        assert sim.now == max(delays, default=0.0)
        assert [result[t] for t in timeouts] == list(range(len(timeouts)))
        return True

    assert sim.run(sim.process(job())) is True


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=15))
def test_any_of_fires_at_earliest_delay(ticks):
    sim = Simulator()
    delays = [t * _TICK for t in ticks]

    def job():
        timeouts = [sim.timeout(d, value=i) for i, d in enumerate(delays)]
        result = yield sim.any_of(timeouts)
        winner = min(range(len(delays)), key=lambda i: (delays[i], i))
        assert sim.now == delays[winner]
        assert timeouts[winner] in result
        assert result[timeouts[winner]] == winner
        return True

    assert sim.run(sim.process(job())) is True


@given(st.lists(st.integers(1, 100), min_size=1, max_size=20))
def test_resource_grants_are_fifo(hold_ticks):
    """Capacity-1 resource: service order equals request order."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    grants: list[int] = []

    def worker(i: int, hold: float):
        with res.request() as req:
            yield req
            grants.append(i)
            yield sim.timeout(hold)

    for i, ticks in enumerate(hold_ticks):
        sim.process(worker(i, ticks * _TICK))
    sim.run()
    assert grants == list(range(len(hold_ticks)))


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 100)),
        min_size=2,
        max_size=20,
    )
)
def test_priority_resource_orders_by_priority_then_arrival(requests):
    """All requests arrive together: the first is granted immediately, the
    rest are served by (priority, arrival order)."""
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    grants: list[int] = []

    def worker(i: int, priority: int, hold: float):
        with res.request(priority=priority) as req:
            yield req
            grants.append(i)
            yield sim.timeout(hold)

    for i, (priority, ticks) in enumerate(requests):
        sim.process(worker(i, priority, ticks * _TICK))
    sim.run()
    queued = sorted(range(1, len(requests)), key=lambda i: (requests[i][0], i))
    assert grants == [0] + queued


@given(
    st.lists(st.integers(0, 5), min_size=1, max_size=12),
    st.lists(st.integers(0, 5), min_size=1, max_size=12),
)
def test_store_preserves_fifo_under_interleaving(put_gaps, get_gaps):
    sim = Simulator()
    store = Store(sim)
    n = len(put_gaps)
    got: list[int] = []

    def producer():
        for i, gap in enumerate(put_gaps):
            yield sim.timeout(gap * _TICK)
            yield store.put(i)

    def consumer():
        gaps = (get_gaps * (n // len(get_gaps) + 1))[:n]
        for gap in gaps:
            yield sim.timeout(gap * _TICK)
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == list(range(n))
