"""Unit tests for the power meter."""

import pytest

from repro.power import PowerMeter
from repro.sim import Simulator


def test_active_energy_accumulates():
    sim = Simulator()
    meter = PowerMeter(sim)
    meter.sink("flash", 0.5)
    meter.sink("flash", 0.25)
    meter.sink("cpu", 1.0)
    assert meter.active_energy("flash") == pytest.approx(0.75)
    assert meter.active_energy() == pytest.approx(1.75)


def test_static_power_integrates_over_window():
    sim = Simulator()
    meter = PowerMeter(sim)
    meter.register_static("platform", 50.0)
    mark = meter.snapshot()
    sim.process(iter_timeout(sim, 2.0))
    sim.run()
    report = meter.window(mark)
    assert report.seconds == pytest.approx(2.0)
    assert report.static_j["platform"] == pytest.approx(100.0)
    assert report.total_j == pytest.approx(100.0)
    assert report.average_power_w == pytest.approx(50.0)


def iter_timeout(sim, t):
    yield sim.timeout(t)


def test_window_isolates_interval():
    sim = Simulator()
    meter = PowerMeter(sim)
    meter.sink("cpu", 5.0)  # before the window
    mark = meter.snapshot()
    meter.sink("cpu", 2.0)
    report = meter.window(mark)
    assert report.active_j == {"cpu": pytest.approx(2.0)}


def test_joules_per_gb():
    sim = Simulator()
    meter = PowerMeter(sim)
    mark = meter.snapshot()
    meter.sink("cpu", 3.0)
    report = meter.window(mark)
    assert report.joules_per_gb(1e9) == pytest.approx(3.0)
    assert report.joules_per_gb(0.5e9) == pytest.approx(6.0)
    with pytest.raises(ValueError):
        report.joules_per_gb(0)


def test_subset_by_prefix():
    sim = Simulator()
    meter = PowerMeter(sim)
    meter.register_static("host.platform", 10.0)
    mark = meter.snapshot()
    meter.sink("ssd0.flash", 1.0)
    meter.sink("ssd0.isps", 2.0)
    meter.sink("host.cpu", 4.0)
    sim.process(iter_timeout(sim, 1.0))
    sim.run()
    report = meter.window(mark)
    assert report.subset(["ssd0"]) == pytest.approx(3.0)
    assert report.subset(["host"]) == pytest.approx(14.0)


def test_validation():
    sim = Simulator()
    meter = PowerMeter(sim)
    with pytest.raises(ValueError):
        meter.sink("x", -1.0)
    with pytest.raises(ValueError):
        meter.register_static("x", -5.0)
    meter.register_static("x", 5.0)
    with pytest.raises(ValueError):
        meter.register_static("x", 5.0)  # duplicate
