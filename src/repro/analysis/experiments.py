"""Small analysis helpers shared by benches and examples."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["linear_fit", "format_series_table", "throughput_mb_s"]


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float, float]:
    """Least-squares ``y = a*x + b``; returns ``(a, b, r_squared)``.

    Used to verify the paper's Fig. 6 linear-scaling claim.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two matched points")
    a, b = np.polyfit(x, y, 1)
    predicted = a * x + b
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return float(a), float(b), r2


def throughput_mb_s(nbytes: float, seconds: float) -> float:
    """Throughput in MB/s (decimal megabytes, as the paper uses)."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return nbytes / seconds / 1e6


def format_series_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an aligned text table (benches print these for EXPERIMENTS.md)."""
    str_rows = [[f"{v:.4g}" if isinstance(v, float) else str(v) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in str_rows)) if str_rows else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
