"""Overload-control primitives and host-side resilience fixes.

Covers the four admission-side state machines (retry budget, brownout,
CoDel, AIMD), the multi-window burn-rate evaluator, and three host-side
hardening properties:

* a Hypothesis state machine drives the circuit breaker through arbitrary
  allow/succeed/fail/advance interleavings and checks every edge it takes
  is a legal transition, ``fast_fails`` never decreases, and the half-open
  state never has two live probes in flight;
* the retry budget conserves every request it sees
  (``requested == admitted + rejected``) and never lets admitted retries
  outrun ``burst + ratio * fresh``;
* a token bucket fed a *non-monotonic* clock never conjures tokens, and
  ``send_minion`` fails fast with ``TIMEOUT`` instead of sleeping its
  backoff past the retry deadline.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.cluster import StorageNode
from repro.faults import FaultInjector, FaultPlan
from repro.faults.retry import BreakerConfig, CircuitBreaker, RetryPolicy
from repro.host import InSituError
from repro.obs.health import burn_rate_alerts
from repro.proto import Command
from repro.service import (
    AimdController,
    Brownout,
    CoDelController,
    RetryBudget,
    TokenBucket,
)
from repro.workloads import BookCorpus, CorpusSpec


# ---------------------------------------------------------------------------
# RetryBudget
# ---------------------------------------------------------------------------

def test_retry_budget_starts_full_and_caps_at_burst():
    budget = RetryBudget(ratio=0.1, burst=3.0)
    assert budget.try_spend() and budget.try_spend() and budget.try_spend()
    assert not budget.try_spend()  # burst exhausted
    for _ in range(100):
        budget.earn()
    assert budget.tokens == pytest.approx(3.0)  # earn never exceeds burst


def test_retry_budget_validation():
    with pytest.raises(ValueError):
        RetryBudget(ratio=-0.1, burst=2.0)
    with pytest.raises(ValueError):
        RetryBudget(ratio=0.1, burst=0.5)


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(st.booleans(), min_size=1, max_size=200),  # True = earn
    ratio=st.floats(min_value=0.0, max_value=2.0),
    burst=st.floats(min_value=1.0, max_value=16.0),
)
def test_retry_budget_conservation_and_cap(ops, ratio, burst):
    budget = RetryBudget(ratio=ratio, burst=burst)
    fresh = 0
    for earn in ops:
        if earn:
            budget.earn()
            fresh += 1
        else:
            budget.try_spend()
    # conservation: every retry the budget saw was either admitted or rejected
    assert budget.requested == budget.admitted + budget.rejected
    # the cap: admitted retries never outrun the initial burst plus earnings
    assert budget.admitted <= burst + ratio * fresh + 1e-6
    assert -1e-9 <= budget.tokens <= burst + 1e-9


# ---------------------------------------------------------------------------
# Brownout
# ---------------------------------------------------------------------------

def test_brownout_sheds_lowest_class_first():
    brownout = Brownout(("bronze", "silver", "gold"), start=0.5)
    # bronze browns out at 50% depth, silver at 75%, gold never
    assert not brownout.sheds("bronze", 15, 32)
    assert brownout.sheds("bronze", 16, 32)
    assert not brownout.sheds("silver", 16, 32)
    assert brownout.sheds("silver", 24, 32)
    assert not brownout.sheds("gold", 31, 32)


def test_brownout_start_at_one_disables_shedding():
    brownout = Brownout(("bronze", "silver", "gold"), start=1.0)
    for name in ("bronze", "silver", "gold"):
        assert not brownout.sheds(name, 31, 32)


def test_brownout_rejects_nonpositive_start():
    with pytest.raises(ValueError):
        Brownout(("a", "b"), start=0.0)


# ---------------------------------------------------------------------------
# CoDel
# ---------------------------------------------------------------------------

def test_codel_never_drops_below_target():
    codel = CoDelController(target=2e-3, interval=20e-3)
    for step in range(100):
        assert not codel.on_dequeue(step * 1e-3, sojourn=1e-3)
    assert codel.drops == 0


def test_codel_drops_after_sustained_standing_queue():
    codel = CoDelController(target=2e-3, interval=10e-3)
    decisions = [codel.on_dequeue(now * 1e-3, sojourn=5e-3) for now in range(40)]
    # grace period: nothing dropped until sojourn stayed high a full interval
    assert not any(decisions[:10])
    assert any(decisions[10:])
    # square-root law: drop spacing tightens while the queue persists
    drop_times = [t for t, dropped in enumerate(decisions) if dropped]
    gaps = [b - a for a, b in zip(drop_times, drop_times[1:])]
    assert gaps == sorted(gaps, reverse=True)
    assert codel.drops == len(drop_times)


def test_codel_burst_below_target_resets_controller():
    codel = CoDelController(target=2e-3, interval=10e-3)
    for now in range(25):
        codel.on_dequeue(now * 1e-3, sojourn=5e-3)
    assert codel.dropping
    assert not codel.on_dequeue(26e-3, sojourn=1e-3)  # queue drained
    assert not codel.dropping and codel.first_above is None
    # the grace period starts over from scratch
    assert not codel.on_dequeue(27e-3, sojourn=5e-3)


# ---------------------------------------------------------------------------
# AIMD
# ---------------------------------------------------------------------------

def test_aimd_additive_increase_multiplicative_decrease():
    aimd = AimdController(low=1e-3, high=5e-3, decrease=0.5,
                          floor=2, ceiling=16, initial=4)
    assert aimd.update(10e-3) == 5  # wait above high: +1
    assert aimd.update(10e-3) == 6
    assert aimd.update(3e-3) == 6  # in the dead band: hold
    assert aimd.update(0.0) == 3  # below low: halve (ceil)
    assert aimd.update(0.0) == 2
    assert aimd.update(0.0) == 2  # clamped at the floor
    assert aimd.peak == 6 and aimd.increases == 2 and aimd.decreases == 2


def test_aimd_never_exceeds_ceiling():
    aimd = AimdController(low=1e-3, high=5e-3, decrease=0.5,
                          floor=1, ceiling=6, initial=4)
    for _ in range(20):
        assert aimd.update(1.0) <= 6
    assert aimd.allowed == 6 and aimd.peak == 6


# ---------------------------------------------------------------------------
# Burn-rate alerting
# ---------------------------------------------------------------------------

def _window(long_ms, short_ms, threshold):
    from repro.config.schema import BurnWindowConfig

    return BurnWindowConfig(long_ms=long_ms, short_ms=short_ms,
                            threshold=threshold)


def test_burn_rate_fires_on_sustained_badness():
    # objective 0.9 -> budget 0.1; all-bad traffic burns at 10x
    events = [(t * 1e-3, False) for t in range(20)]
    (verdict,) = burn_rate_alerts(events, 0.9, [_window(10.0, 2.0, 5.0)])
    assert verdict["fired"]
    assert verdict["fired_at_ms"] == pytest.approx(0.0)
    assert verdict["worst"] == pytest.approx(10.0)


def test_burn_rate_ignores_a_short_blip():
    # two bad events in a sea of good: the short window spikes but the
    # long window stays dilute, so the pair must not fire
    events = [(t * 1e-3, t not in (10, 11)) for t in range(100)]
    (verdict,) = burn_rate_alerts(events, 0.9, [_window(50.0, 2.0, 8.0)])
    assert not verdict["fired"]
    assert verdict["fired_at_ms"] is None


def test_burn_rate_rejects_bad_objective():
    with pytest.raises(ValueError):
        burn_rate_alerts([], 1.0, [_window(10.0, 2.0, 1.0)])


# ---------------------------------------------------------------------------
# Circuit breaker: stateful property + probe-deadline regression
# ---------------------------------------------------------------------------

LEGAL_EDGES = {
    (CircuitBreaker.CLOSED, CircuitBreaker.OPEN),
    (CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN),
    (CircuitBreaker.HALF_OPEN, CircuitBreaker.CLOSED),
    (CircuitBreaker.HALF_OPEN, CircuitBreaker.OPEN),
    # a straggler success from a request admitted before the trip is
    # direct evidence of health: the breaker closes without probing
    (CircuitBreaker.OPEN, CircuitBreaker.CLOSED),
}


class BreakerMachine(RuleBasedStateMachine):
    """Arbitrary interleavings of traffic against one breaker."""

    PROBE_TIMEOUT = 0.5

    def __init__(self):
        super().__init__()
        self.breaker = CircuitBreaker(BreakerConfig(
            failure_threshold=3, cooldown=1.0,
            probe_timeout=self.PROBE_TIMEOUT,
        ))
        self.now = 0.0
        self.last_fast_fails = 0
        self.probe_live_until: float | None = None

    @rule(dt=st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
    def advance(self, dt):
        self.now += dt

    @rule()
    def try_send(self):
        was_closed = self.breaker.state == CircuitBreaker.CLOSED
        admitted = self.breaker.allow(self.now)
        if was_closed:
            assert admitted  # closed always admits
            return
        if admitted:
            # half-open admits exactly one probe per deadline window
            assert (
                self.probe_live_until is None
                or self.now >= self.probe_live_until
            ), "second probe admitted while one was still in flight"
            self.probe_live_until = self.now + self.PROBE_TIMEOUT
        else:
            assert self.breaker.state != CircuitBreaker.CLOSED

    @rule()
    def succeed(self):
        self.breaker.record_success(self.now)
        self.probe_live_until = None

    @rule()
    def fail(self):
        self.breaker.record_failure(self.now)
        self.probe_live_until = None

    @invariant()
    def state_is_legal_and_fast_fails_monotonic(self):
        assert self.breaker.state in (
            CircuitBreaker.CLOSED, CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN
        )
        assert self.breaker.fast_fails >= self.last_fast_fails
        self.last_fast_fails = self.breaker.fast_fails
        path = [CircuitBreaker.CLOSED] + [s for _, s in self.breaker.transitions]
        for edge in zip(path, path[1:]):
            assert edge in LEGAL_EDGES, f"illegal transition {edge}"


TestBreakerStateMachine = BreakerMachine.TestCase


def test_breaker_probe_deadline_unwedges_half_open():
    """A probe whose outcome is never recorded must not wedge the breaker."""
    breaker = CircuitBreaker(BreakerConfig(
        failure_threshold=1, cooldown=10e-3, probe_timeout=5e-3,
    ))
    breaker.record_failure(0.0)
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.allow(10e-3)  # cooldown over: the probe goes out...
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert not breaker.allow(12e-3)  # ...and holds the slot...
    # ...but never resolves; past the deadline the slot re-arms
    assert breaker.allow(15.1e-3)
    breaker.record_success(15.1e-3)
    assert breaker.state == CircuitBreaker.CLOSED


# ---------------------------------------------------------------------------
# Token bucket under a non-monotonic clock
# ---------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        min_size=1, max_size=100,
    ),
    rate=st.floats(min_value=0.5, max_value=100.0),
    capacity=st.floats(min_value=1.0, max_value=8.0),
)
def test_token_bucket_clock_regression_never_conjures_tokens(times, rate, capacity):
    """Out-of-order timestamps (as seen across merged event sources) must
    never credit tokens for time that did not elapse."""
    bucket = TokenBucket(rate=rate, capacity=capacity)
    admitted = 0
    for now in times:  # deliberately not sorted
        if bucket.try_take(now):
            admitted += 1
        assert bucket.tokens <= capacity + 1e-9
    assert admitted <= capacity + rate * max(times) + 1e-6


# ---------------------------------------------------------------------------
# Deadline-aware dispatch retries
# ---------------------------------------------------------------------------

def test_send_minion_fails_fast_instead_of_backing_off_past_deadline():
    """When the next backoff would land beyond the retry deadline, the
    client reports TIMEOUT immediately rather than sleeping into it."""
    node = StorageNode.build(
        devices=1, seed=7, device_capacity=24 * 1024 * 1024,
        retry_policy=RetryPolicy(
            max_attempts=10, base_delay=5e-3, multiplier=1.0,
            max_delay=5e-3, jitter=0.0, deadline=8e-3,
        ),
    )
    books = BookCorpus(
        CorpusSpec(files=1, mean_file_bytes=16 * 1024, seed=3)
    ).generate()
    node.sim.run(node.sim.process(node.stage_corpus(books, compressed=False)))
    plan = FaultPlan().kill_device(0, "compstor0", at=node.sim.now)
    FaultInjector.for_node(node, plan).start()
    start = node.sim.now

    def go():
        try:
            yield from node.client.send_minion(
                "compstor0", Command(command_line=f"grep x {books[0].name}")
            )
        except InSituError as exc:
            return exc
        return None

    outcome = node.sim.run(node.sim.process(go()))
    assert isinstance(outcome, InSituError)
    assert "TIMEOUT" in str(outcome)
    # it gave up *before* the deadline, not one full backoff after it
    assert node.sim.now - start < 8e-3
