"""Hermetic-run helpers for tests and reproducibility tooling.

Two concerns live here:

**Fresh-process state.**  The model keeps a few process-global ID
allocators (minion/query IDs, PIDs, NVMe CIDs) whose values end up in
trace payloads and responses.  They make IDs unique across every
simulator in a process, but they also make a scenario's observable output
depend on what ran *earlier* in the process — which breaks digest-style
comparisons across runs.  :func:`reset_global_ids` restores fresh-process
allocation state.  The test suite applies it before every test
(``tests/conftest.py``), the golden-schedule scenarios call it directly,
and the parallel runner's workers call it before every job, so digests
are a pure function of ``(seed, model)`` no matter who runs them.

**Golden-schedule scenarios.**  The three pinned scenarios whose trace
digests must never drift (see ``tests/test_golden_schedules.py`` for the
recorded hashes and the re-record procedure).  They live in the package —
not the test tree — so ``spawn`` workers and the parallel experiment
matrix can run them too: :func:`golden_scenario_job` is the runner-facing
work item, and serial-vs-parallel digest equality is the proof that the
process-pool merge is bit-identical.
"""

from __future__ import annotations

import hashlib
from enum import Enum

__all__ = [
    "GOLDEN_SCENARIO_ORDER",
    "canonical_value",
    "golden_scenario_job",
    "golden_scenarios",
    "reset_global_ids",
    "schedule_digest",
]


def reset_global_ids() -> None:
    """Restart every process-global ID allocator (fresh-process state).

    Also drops the process-wide codec payload memo: content addressing
    keeps a warm cache *correct*, but a pool worker reusing it across jobs
    grows memory unboundedly over a long matrix run and lets overhead
    benches observe another job's warm-cache timings.
    """
    from repro.apps.compress import clear_payload_cache
    from repro.isos import process as isos_process
    from repro.nvme import commands as nvme_commands
    from repro.proto import entities

    entities.reset_ids()
    isos_process.reset_ids()
    nvme_commands.reset_ids()
    clear_payload_cache()


# -- canonical hashing ------------------------------------------------------


def canonical_value(value) -> str:
    """A stable, type-tagged string for anything a trace detail can hold.

    Floats go through ``repr`` (exact shortest round-trip form, so any bit
    change in a computed time shows up); containers recurse in deterministic
    order.
    """
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, str):
        return f"s:{value}"
    if isinstance(value, bytes):
        return f"y:{value.hex()}"
    if isinstance(value, Enum):
        return f"e:{value.value}"
    if value is None:
        return "n"
    if isinstance(value, dict):
        items = ",".join(
            f"{canonical_value(k)}={canonical_value(v)}"
            for k, v in sorted(value.items(), key=repr)
        )
        return f"d:{{{items}}}"
    if isinstance(value, (list, tuple)):
        return f"l:[{','.join(canonical_value(v) for v in value)}]"
    return f"r:{value!r}"


def schedule_digest(tracer, extras: dict) -> str:
    """SHA-256 over every trace record in emission order, plus terminal state."""
    h = hashlib.sha256()
    for rec in tracer:
        h.update(
            f"{rec.time!r}|{rec.component}|{rec.kind}|"
            f"{canonical_value(rec.detail)}\n".encode()
        )
    h.update(canonical_value(extras).encode())
    return h.hexdigest()


# -- pinned golden scenarios ------------------------------------------------


def scenario_single_gzip():
    """One CompStor, one gzip minion over a staged two-book corpus."""
    from repro.cluster import StorageNode
    from repro.sim import Tracer
    from repro.workloads import BookCorpus, CorpusSpec

    reset_global_ids()  # hermetic: digests are pure functions of (seed, model)
    tracer = Tracer()
    books = BookCorpus(CorpusSpec(files=2, mean_file_bytes=24 * 1024, seed=3)).generate()
    node = StorageNode.build(
        devices=1, seed=11, device_capacity=24 * 1024 * 1024, tracer=tracer
    )
    sim = node.sim
    sim.run(sim.process(node.stage_corpus(books, compressed=False)))

    def job():
        responses = []
        for book in books:
            response = yield from node.client.run(
                "compstor0", f"gzip {book.name}"
            )
            responses.append(response)
        return responses

    responses = sim.run(sim.process(job()))
    extras = {
        "finished_at": sim.now,
        "stdout": [r.stdout for r in responses],
        "exec_seconds": [r.execution_seconds for r in responses],
        "flash": [
            node.compstors[0].flash.stats.reads,
            node.compstors[0].flash.stats.programs,
        ],
    }
    return tracer, extras


def scenario_fleet_grep():
    """2 nodes x 2 devices, one replicated ``run_job`` grep sweep."""
    from repro.cluster import StorageFleet
    from repro.proto import Command
    from repro.sim import Tracer
    from repro.workloads import BookCorpus, CorpusSpec

    reset_global_ids()
    tracer = Tracer()
    fleet = StorageFleet.build(
        nodes=2, devices_per_node=2, seed=7,
        device_capacity=24 * 1024 * 1024, tracer=tracer,
    )
    sim = fleet.sim
    books = BookCorpus(
        CorpusSpec(files=8, mean_file_bytes=24 * 1024, seed=5)
    ).generate()
    sim.run(sim.process(fleet.stage_corpus(books, replicas=2)))

    def job():
        return (
            yield from fleet.run_job(
                books, lambda b: Command(command_line=f"grep xylophone {b.name}")
            )
        )

    report = sim.run(sim.process(job()))
    extras = {
        "finished_at": sim.now,
        "statuses": [None if r is None else r.status.value for r in report.responses],
        "stdout": [None if r is None else r.stdout for r in report.responses],
        "accounting": [
            report.dispatched, report.completed, report.recovered,
            list(report.lost), report.retries, report.failovers,
            report.host_fallbacks,
        ],
    }
    return tracer, extras


def scenario_chaos_drill():
    """Replicated fleet job under a fixed fault plan (crash + transients)."""
    from repro.cluster import StorageFleet
    from repro.faults import BreakerConfig, FaultInjector, FaultPlan, RetryPolicy
    from repro.proto import Command
    from repro.sim import Tracer
    from repro.workloads import BookCorpus, CorpusSpec

    reset_global_ids()
    tracer = Tracer()
    fleet = StorageFleet.build(
        nodes=2, devices_per_node=2, seed=13,
        device_capacity=24 * 1024 * 1024, tracer=tracer,
        retry_policy=RetryPolicy(), breaker_config=BreakerConfig(),
    )
    sim = fleet.sim
    books = BookCorpus(
        CorpusSpec(files=6, mean_file_bytes=16 * 1024, seed=13)
    ).generate()
    sim.run(sim.process(fleet.stage_corpus(books, replicas=2)))
    ring = fleet.device_ring()
    plan = (
        FaultPlan(seed=13)
        .kill_device(*ring[1], at=sim.now + 2e-4, recover_after=2e-3)
        .transient_window(*ring[2], at=sim.now, duration=1e-3, fraction=0.5)
    )
    injector = FaultInjector.for_fleet(fleet, plan).start()

    def job():
        return (
            yield from fleet.run_job(
                books, lambda b: Command(command_line=f"grep xylophone {b.name}")
            )
        )

    report = sim.run(sim.process(job()))
    extras = {
        "fingerprint": plan.fingerprint(),
        "applied": list(injector.applied),
        "finished_at": sim.now,
        "statuses": [None if r is None else r.status.value for r in report.responses],
        "accounting": [
            report.dispatched, report.completed, report.recovered,
            list(report.lost), report.retries, report.failovers,
            report.host_fallbacks,
        ],
    }
    return tracer, extras


#: Scenario builders in pinned order; each returns ``(tracer, extras)``.
GOLDEN_SCENARIOS = {
    "single_gzip": scenario_single_gzip,
    "fleet_grep": scenario_fleet_grep,
    "chaos_drill": scenario_chaos_drill,
}
GOLDEN_SCENARIO_ORDER: tuple[str, ...] = tuple(GOLDEN_SCENARIOS)


def golden_scenarios():
    """The scenario registry (name -> builder), in pinned order."""
    return dict(GOLDEN_SCENARIOS)


def golden_scenario_job(name: str) -> dict:
    """Run one golden scenario; parallel-runner work item.

    Returns the schedule digest plus the record count, both pure functions
    of ``(seed, model)`` — so any cross-process divergence (worker import
    order, spawn environment) is caught by digest comparison.
    """
    tracer, extras = GOLDEN_SCENARIOS[name]()
    return {
        "scenario": name,
        "records": len(tracer),
        "digest": schedule_digest(tracer, extras),
    }
