"""Ablation — telemetry-driven vs round-robin minion placement.

DESIGN.md decision under test: the paper exposes per-device telemetry
"for load balancing".  With one device pre-loaded with a long job, the
least-loaded policy should finish a task burst faster than blind
round-robin.
"""

from repro.analysis.experiments import format_series_table
from repro.cluster import (
    LeastLoadedBalancer,
    MinionDispatcher,
    RoundRobinBalancer,
    StorageNode,
)
from repro.proto import Command

BURST = 12


def run_policy(balancer_factory):
    node = StorageNode.build(devices=3, device_capacity=32 * 1024 * 1024, seed=3)
    sim = node.sim

    cores = node.compstors[0].isps.cluster.spec.cores

    def stage():
        for ssd in node.compstors:
            yield from ssd.fs.write_file("task.txt", b"fox payload line\n" * 4000)
        for i in range(cores):  # enough hogs to saturate every ISPS core
            yield from node.compstors[0].fs.write_file(
                f"huge{i}.txt", b"fox filler\n" * 60000
            )

    sim.run(sim.process(stage()))

    def experiment():
        hogs = [
            sim.process(node.client.run("compstor0", f"bzip2 huge{i}.txt"))
            for i in range(cores)
        ]
        yield sim.timeout(2e-3)
        dispatcher = MinionDispatcher(node.client, balancer_factory())
        start = sim.now
        responses = yield from dispatcher.submit_all(
            [Command(command_line="gawk fox task.txt") for _ in range(BURST)]
        )
        elapsed = sim.now - start
        assert all(r.ok for r in responses)
        yield sim.all_of(hogs)
        return elapsed, dispatcher.device_share()

    return sim.run(sim.process(experiment()))


def test_ablation_load_balancing(benchmark):
    def experiment():
        rr = run_policy(RoundRobinBalancer)
        ll = run_policy(LeastLoadedBalancer)
        return rr, ll

    (rr_time, rr_share), (ll_time, ll_share) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    print("\n" + format_series_table(
        "Ablation — placing a 12-task burst while compstor0 is busy",
        ["policy", "burst completion (s)", "placement"],
        [
            ["round-robin", rr_time, str(dict(sorted(rr_share.items())))],
            ["least-loaded", ll_time, str(dict(sorted(ll_share.items())))],
        ],
    ))

    # telemetry-driven placement routes work away from the busy device...
    assert ll_share.get("compstor0", 0) < rr_share.get("compstor0", 0)
    # ...and completes the burst at least 10% faster
    assert ll_time < 0.9 * rr_time
