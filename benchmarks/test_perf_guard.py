"""Simulator wall-clock regression guard — monolithic and sharded paths.

Compares measured ``events_per_sec`` on the pinned ``small`` (monolithic)
and ``n16-shard`` (sharded-engine) scenarios against the committed
baseline (``BENCH_sim.json``, written by ``python -m repro bench``).  A
regression of more than 25% fails; when no baseline has been recorded
(fresh clone, or a host that never ran the bench) the guard skips rather
than guessing.

Wall-clock measurements on shared CI hosts are noisy, so a miss is
confirmed before failing: the scenario is re-measured once with more
repetitions and only a repeated miss is reported.  The schedules
themselves are deterministic (see ``tests/test_golden_schedules.py`` and
``tests/test_shard_equivalence.py``), so the event-count cross-checks
below are exact, and only host speed varies between runs.

The sharded guard also pins the *relative* cost of the sync rounds: on a
single core the sequential shard backend pays bounded overhead over the
monolithic heap (it cannot be faster without parallel hardware — see
``benchmarks/perf/ab_shard.py`` and DESIGN.md §14), and that overhead
ratio must not silently grow.
"""

from __future__ import annotations

import pytest

from repro.analysis.perf import SCENARIOS, load_bench_json, run_scenario

#: events/sec may drop to 75% of baseline before this guard trips.
REGRESSION_FLOOR = 0.75


def test_events_per_sec_within_regression_budget():
    baseline = load_bench_json()
    if baseline is None:
        pytest.skip("no BENCH_sim.json baseline recorded (run: python -m repro bench)")
    recorded = baseline["scenarios"].get("small")
    if recorded is None:
        pytest.skip("baseline has no 'small' scenario; re-record with python -m repro bench")

    floor = recorded["events_per_sec"] * REGRESSION_FLOOR
    result = run_scenario(SCENARIOS["small"], repeat=3)
    # Schedule determinism cross-check first: if the event count drifted,
    # the schedule changed and events/sec is not comparable at all.
    assert result.events == recorded["events"], (
        f"event count drifted ({result.events} vs {recorded['events']}): the "
        f"schedule changed, so events/sec is not comparable — re-record the "
        f"baseline and explain the drift"
    )
    if result.events_per_sec < floor:
        # One retry with more repetitions: a single slow reading on a busy
        # host is noise; a repeated one is a regression.
        result = run_scenario(SCENARIOS["small"], repeat=5)
    assert result.events_per_sec >= floor, (
        f"simulator throughput regressed: {result.events_per_sec:,.0f} events/s "
        f"vs baseline {recorded['events_per_sec']:,.0f} (floor {floor:,.0f}); "
        f"re-record BENCH_sim.json if a model change made schedules heavier"
    )


def test_sharded_events_per_sec_within_regression_budget():
    """The sharded engine's round loop, guarded the same way."""
    baseline = load_bench_json()
    if baseline is None:
        pytest.skip("no BENCH_sim.json baseline recorded (run: python -m repro bench)")
    recorded = baseline["scenarios"].get("n16-shard")
    if recorded is None:
        pytest.skip("baseline has no 'n16-shard' scenario; re-record with "
                    "python -m repro bench --scenario n16-shard")

    floor = recorded["events_per_sec"] * REGRESSION_FLOOR
    result = run_scenario(SCENARIOS["n16-shard"], repeat=2)
    assert result.shards == recorded["shards"]
    # Determinism cross-check: the sharded schedule (host + cell events of
    # the synchronized round loop) must replay the recorded count exactly.
    assert result.events == recorded["events"], (
        f"sharded event count drifted ({result.events} vs "
        f"{recorded['events']}): the round schedule changed, so events/sec "
        f"is not comparable — re-record the baseline and explain the drift"
    )
    if result.events_per_sec < floor:
        result = run_scenario(SCENARIOS["n16-shard"], repeat=4)
    assert result.events_per_sec >= floor, (
        f"sharded engine throughput regressed: {result.events_per_sec:,.0f} "
        f"events/s vs baseline {recorded['events_per_sec']:,.0f} "
        f"(floor {floor:,.0f})"
    )


def test_zoned_events_per_sec_within_regression_budget():
    """The zoned (ZNS) backend's lane, guarded the same way.

    The zoned FTL replaces per-page GC with whole-zone copy-forward, so its
    schedule — and therefore its event count — differs from the page lane;
    this guard pins that schedule and its wall-clock rate independently.
    """
    baseline = load_bench_json()
    if baseline is None:
        pytest.skip("no BENCH_sim.json baseline recorded (run: python -m repro bench)")
    recorded = baseline["scenarios"].get("zoned-n8")
    if recorded is None:
        pytest.skip("baseline has no 'zoned-n8' scenario; re-record with "
                    "python -m repro bench --scenario zoned-n8")

    floor = recorded["events_per_sec"] * REGRESSION_FLOOR
    result = run_scenario(SCENARIOS["zoned-n8"], repeat=2)
    # Determinism cross-check: the zoned schedule must replay the recorded
    # event count exactly before the rate comparison means anything.
    assert result.events == recorded["events"], (
        f"zoned event count drifted ({result.events} vs {recorded['events']}): "
        f"the schedule changed, so events/sec is not comparable — re-record "
        f"the baseline and explain the drift"
    )
    if result.events_per_sec < floor:
        result = run_scenario(SCENARIOS["zoned-n8"], repeat=4)
    assert result.events_per_sec >= floor, (
        f"zoned backend throughput regressed: {result.events_per_sec:,.0f} "
        f"events/s vs baseline {recorded['events_per_sec']:,.0f} "
        f"(floor {floor:,.0f})"
    )


def test_shard_overhead_ratio_is_bounded():
    """Sync rounds must stay cheap relative to the monolithic heap.

    Cross-checks the recorded n16 (monolithic) and n16-shard baselines:
    the sequential shard backend on one core is pure overhead versus the
    single heap, and that overhead is bounded — the sharded run must keep
    at least half the monolithic per-event rate.  (On multi-core hosts the
    process backend turns the same rounds into wall-clock speedup; this
    guard pins the single-core cost floor the speedup is paid from.)
    """
    baseline = load_bench_json()
    if baseline is None:
        pytest.skip("no BENCH_sim.json baseline recorded (run: python -m repro bench)")
    scenarios = baseline["scenarios"]
    if "n16" not in scenarios or "n16-shard" not in scenarios:
        pytest.skip("baseline lacks the n16/n16-shard pair; re-record with "
                    "python -m repro bench --scenario n16 n16-shard")
    mono = run_scenario(SCENARIOS["n16"], repeat=2)
    shard = run_scenario(SCENARIOS["n16-shard"], repeat=2)
    assert mono.events == scenarios["n16"]["events"]
    assert shard.events == scenarios["n16-shard"]["events"]
    ratio = shard.events_per_sec / mono.events_per_sec
    assert ratio >= 0.5, (
        f"shard sync overhead grew: sharded runs at {ratio:.2f}x the "
        f"monolithic per-event rate (floor 0.50x) — profile the round loop "
        f"(benchmarks/perf/ab_shard.py) before re-recording"
    )
