#!/usr/bin/env python3
"""Quickstart: one host, two CompStors, one in-situ grep.

Builds the paper's Fig. 2 topology in miniature, stages a tiny text file on
a device, ships a minion carrying ``grep``, and prints the response and the
device telemetry — the full software stack (client -> in-situ library ->
NVMe vendor command -> PCIe -> ISPS agent -> embedded Linux -> flash access
driver -> FTL -> NAND) in a dozen lines of user code.

Run:  python examples/quickstart.py
"""

from repro.config import (
    FlashConfig,
    FleetConfig,
    ScenarioConfig,
    build_node,
    config_digest,
)

#: The whole experiment as one declarative value.  Its digest identifies
#: the run; ``python -m repro config show`` can reprint any preset the
#: same way.
SCENARIO = ScenarioConfig(
    name="quickstart",
    flash=FlashConfig(capacity_bytes=16 * 1024 * 1024),
    fleet=FleetConfig(devices_per_node=2),
)


def main() -> None:
    print(f"scenario {SCENARIO.name} digest={config_digest(SCENARIO)[:16]}")
    node = build_node(SCENARIO)
    sim = node.sim
    ssd = node.compstors[0]

    # Stage a file inside the drive (in production it arrives via normal
    # NVMe writes; here we write through the device filesystem directly).
    text = b"the quick brown fox\nnothing here\nanother fox sighting\n" * 200
    sim.run(sim.process(ssd.fs.write_file("field-notes.txt", text)))

    def session():
        # 1. in-situ search: only the count crosses the PCIe bus
        response = yield from node.client.run("compstor0", "grep fox field-notes.txt")
        print(f"grep matched {response.stdout.decode()} lines")
        print(f"   executed in-situ in {response.execution_seconds * 1e3:.2f} ms "
              f"on {response.device}")

        # 2. any shell command runs in-place — compress, then verify
        response = yield from node.client.run(
            "compstor0", script="gzip field-notes.txt\nls"
        )
        print("in-storage `ls` after gzip:")
        for line in response.stdout.decode().splitlines():
            print(f"   {line}")

        # 3. telemetry query (what a load balancer would use)
        snap = yield from node.client.status("compstor0")
        print(f"device status: {snap.core_utilization * 100:.1f}% cores, "
              f"{snap.temperature_c:.1f} degC, {snap.active_minions} active minions")

    sim.run(sim.process(session()))
    print(f"\nsimulated time elapsed: {sim.now * 1e3:.2f} ms")
    print(f"minions sent: {node.client.minions_sent}, "
          f"NVMe commands executed: {ssd.controller.commands_executed}")


if __name__ == "__main__":
    main()
