"""Flash array geometry and page addressing.

A flash array is organised as ``channels x dies x planes x blocks x pages``.
Pages are the program/read unit; blocks are the erase unit; dies operate
independently; a channel's bus serialises data transfers for all dies on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple

__all__ = ["FlashGeometry", "PageAddress", "BlockAddress"]


class PageAddress(NamedTuple):
    """Physical page address within a flash array."""

    channel: int
    die: int
    plane: int
    block: int
    page: int

    @property
    def block_addr(self) -> "BlockAddress":
        return BlockAddress(self.channel, self.die, self.plane, self.block)


class BlockAddress(NamedTuple):
    """Physical block address (erase unit)."""

    channel: int
    die: int
    plane: int
    block: int

    def page(self, page: int) -> PageAddress:
        return PageAddress(self.channel, self.die, self.plane, self.block, page)


@dataclass(frozen=True, slots=True)
class FlashGeometry:
    """Dimensions of a flash array.

    The defaults model one 16-channel enterprise SSD in the scale class of
    the paper's 24TB prototype, scaled down in block count so functional
    simulations stay fast; capacity-accurate instances are produced by
    :meth:`scaled`.
    """

    channels: int = 16
    dies_per_channel: int = 4
    planes_per_die: int = 2
    blocks_per_plane: int = 64
    pages_per_block: int = 128
    page_size: int = 16384  # bytes, typical 16 KiB TLC page

    def __post_init__(self) -> None:
        for field in (
            "channels",
            "dies_per_channel",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ):
            value = getattr(self, field)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{field} must be a positive int, got {value!r}")

    # -- derived sizes -----------------------------------------------------
    @property
    def dies(self) -> int:
        return self.channels * self.dies_per_channel

    @property
    def planes(self) -> int:
        return self.dies * self.planes_per_die

    @property
    def blocks(self) -> int:
        return self.planes * self.blocks_per_plane

    @property
    def pages(self) -> int:
        return self.blocks * self.pages_per_block

    @property
    def block_size(self) -> int:
        return self.pages_per_block * self.page_size

    @property
    def capacity_bytes(self) -> int:
        return self.pages * self.page_size

    # -- address arithmetic --------------------------------------------------
    def page_index(self, addr: PageAddress) -> int:
        """Linearise a page address (row-major over the geometry)."""
        self.validate(addr)
        return (
            (
                ((addr.channel * self.dies_per_channel + addr.die) * self.planes_per_die + addr.plane)
                * self.blocks_per_plane
                + addr.block
            )
            * self.pages_per_block
            + addr.page
        )

    def page_address(self, index: int) -> PageAddress:
        """Inverse of :meth:`page_index`."""
        if not 0 <= index < self.pages:
            raise ValueError(f"page index {index} out of range [0, {self.pages})")
        index, page = divmod(index, self.pages_per_block)
        index, block = divmod(index, self.blocks_per_plane)
        index, plane = divmod(index, self.planes_per_die)
        channel, die = divmod(index, self.dies_per_channel)
        return PageAddress(channel, die, plane, block, page)

    def block_index(self, addr: BlockAddress) -> int:
        return (
            (addr.channel * self.dies_per_channel + addr.die) * self.planes_per_die + addr.plane
        ) * self.blocks_per_plane + addr.block

    def block_address(self, index: int) -> BlockAddress:
        if not 0 <= index < self.blocks:
            raise ValueError(f"block index {index} out of range [0, {self.blocks})")
        index, block = divmod(index, self.blocks_per_plane)
        index, plane = divmod(index, self.planes_per_die)
        channel, die = divmod(index, self.dies_per_channel)
        return BlockAddress(channel, die, plane, block)

    def validate(self, addr: PageAddress | BlockAddress) -> None:
        """Raise ``ValueError`` for an out-of-range address."""
        if not (
            0 <= addr.channel < self.channels
            and 0 <= addr.die < self.dies_per_channel
            and 0 <= addr.plane < self.planes_per_die
            and 0 <= addr.block < self.blocks_per_plane
        ):
            raise ValueError(f"address {addr} outside geometry {self}")
        if isinstance(addr, PageAddress) and not 0 <= addr.page < self.pages_per_block:
            raise ValueError(f"page {addr.page} outside block of {self.pages_per_block} pages")

    def iter_blocks(self) -> Iterator[BlockAddress]:
        """All block addresses in linear order."""
        for index in range(self.blocks):
            yield self.block_address(index)

    def scaled(self, capacity_bytes: int) -> "FlashGeometry":
        """A geometry with the same parallelism but ~``capacity_bytes`` total,
        adjusted via ``blocks_per_plane`` (minimum 2 blocks per plane)."""
        per_plane_bytes = self.pages_per_block * self.page_size
        blocks_per_plane = max(2, round(capacity_bytes / (self.planes * per_plane_bytes)))
        return FlashGeometry(
            channels=self.channels,
            dies_per_channel=self.dies_per_channel,
            planes_per_die=self.planes_per_die,
            blocks_per_plane=blocks_per_plane,
            pages_per_block=self.pages_per_block,
            page_size=self.page_size,
        )
