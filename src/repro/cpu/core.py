"""CPU cluster execution model.

A :class:`CpuCluster` is a pool of identical cores.  Work is expressed in
**cycles**; a core runs at ``freq_hz`` so ``cycles / freq_hz`` seconds of
core occupancy are consumed, and active energy is charged at
``p_active_core`` for that span.  Static/idle power is the power meter's
business (it knows wall-clock spans); the cluster only reports its
utilisation integral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro.sim import PriorityResource, Simulator

__all__ = ["CpuCluster", "CpuSpec"]


@dataclass(frozen=True, slots=True)
class CpuSpec:
    """Static description of a processor.

    ``ipc`` is the average sustained instructions-per-cycle used to convert
    instruction counts to cycles when a workload is specified that way.
    """

    name: str
    cores: int
    freq_hz: float
    ipc: float
    p_active_core: float  # watts per busy core
    p_idle: float  # watts, whole package at idle
    l1_kib: int = 32
    l2_kib: int = 1024
    dram_gib: int = 8

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.freq_hz <= 0 or self.ipc <= 0:
            raise ValueError("freq_hz and ipc must be positive")
        if self.p_active_core < 0 or self.p_idle < 0:
            raise ValueError("power terms must be non-negative")

    def seconds_for_cycles(self, cycles: float) -> float:
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        return cycles / self.freq_hz

    def cycles_for_instructions(self, instructions: float) -> float:
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        return instructions / self.ipc


class CpuCluster:
    """A pool of ``spec.cores`` cores with priority scheduling.

    ``execute(cycles)`` occupies one core for the computed time.  Long
    computations should be run in slices (see :class:`repro.cpu.scheduler.
    RunQueue`) so other work interleaves fairly.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: CpuSpec,
        name: str = "cpu",
        energy_sink: Callable[[str, float], None] | None = None,
    ):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.energy_sink = energy_sink
        self.cores = PriorityResource(sim, capacity=spec.cores, name=f"{name}.cores")
        self.cycles_executed = 0.0
        self.busy_seconds = 0.0
        self._freq_hz = spec.freq_hz

    def execute(self, cycles: float, priority: int = 0) -> Generator:
        """Run ``cycles`` of work on one core; returns elapsed seconds."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        duration = cycles / self._freq_hz
        start = self.sim.now
        with self.cores.request(priority=priority) as req:
            yield req
            yield self.sim.timeout(duration)
        self.cycles_executed += cycles
        self.busy_seconds += duration
        if self.energy_sink is not None and duration > 0:
            self.energy_sink(self.name, self.spec.p_active_core * duration)
        return self.sim.now - start

    def utilization(self) -> float:
        """Mean fraction of cores busy since t=0."""
        return self.cores.utilization()

    def temperature_c(self, ambient: float = 35.0, c_per_watt: float = 4.0) -> float:
        """Steady-state die temperature estimate from current utilisation.

        A simple thermal-resistance model: ambient plus idle dissipation
        plus utilisation-weighted active dissipation.  CompStor exposes this
        through status queries so clients can load-balance.
        """
        power = self.spec.p_idle + self.utilization() * self.spec.cores * self.spec.p_active_core
        return ambient + c_per_watt * power
