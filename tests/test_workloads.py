"""Unit tests for the synthetic book corpus."""

import bz2
import zlib

import pytest

from repro.workloads import BookCorpus, CorpusSpec, partition_round_robin


def test_corpus_is_deterministic():
    a = BookCorpus(CorpusSpec(files=3, mean_file_bytes=8192)).generate()
    b = BookCorpus(CorpusSpec(files=3, mean_file_bytes=8192)).generate()
    assert [x.plain for x in a] == [y.plain for y in b]
    assert [x.needle_count for x in a] == [y.needle_count for y in b]


def test_different_seeds_differ():
    a = BookCorpus(CorpusSpec(files=2, seed=1)).generate()
    b = BookCorpus(CorpusSpec(files=2, seed=2)).generate()
    assert a[0].plain != b[0].plain


def test_compression_ratio_in_english_range():
    books = BookCorpus(CorpusSpec(files=4, mean_file_bytes=128 * 1024)).generate()
    for book in books:
        assert 0.15 < book.ratio < 0.6, f"{book.name} ratio {book.ratio}"


def test_compressions_alternate_and_decompress():
    books = BookCorpus(CorpusSpec(files=4, mean_file_bytes=16 * 1024)).generate()
    assert [b.compression for b in books] == ["gzip", "bzip2", "gzip", "bzip2"]
    assert zlib.decompress(books[0].compressed) == books[0].plain
    assert bz2.decompress(books[1].compressed) == books[1].plain


def test_needle_count_matches_content():
    spec = CorpusSpec(files=2, mean_file_bytes=64 * 1024, needle_rate=0.01)
    books = BookCorpus(spec).generate()
    for book in books:
        assert book.needle_count > 0
        # every injected needle appears (word boundaries guaranteed by join)
        assert book.plain.count(spec.needle.encode()) >= book.needle_count


def test_file_sizes_spread_around_mean():
    spec = CorpusSpec(files=30, mean_file_bytes=64 * 1024)
    books = BookCorpus(spec).generate(functional=False)
    sizes = [b.plain_size for b in books]
    mean = sum(sizes) / len(sizes)
    assert 0.4 * spec.mean_file_bytes < mean < 3.0 * spec.mean_file_bytes
    assert len(set(sizes)) > 10  # actually spread


def test_analytic_generation_is_instant_at_paper_scale():
    spec = CorpusSpec.paper_scale()
    books = BookCorpus(spec).generate(functional=False)
    assert len(books) == 348
    total_compressed = sum(b.compressed_size for b in books)
    # the paper: ~11.3 GB of compressed books
    assert 6e9 < total_compressed < 20e9
    assert all(b.plain is None for b in books)


def test_compressed_names():
    books = BookCorpus(CorpusSpec(files=2, mean_file_bytes=4096)).generate(functional=False)
    assert books[0].compressed_name.endswith(".gz")
    assert books[1].compressed_name.endswith(".bz2")


def test_spec_validation():
    with pytest.raises(ValueError):
        CorpusSpec(files=0)
    with pytest.raises(ValueError):
        CorpusSpec(needle_rate=1.5)
    with pytest.raises(ValueError):
        CorpusSpec(compressions=("zip",))


def test_partition_round_robin():
    parts = partition_round_robin(list(range(10)), 3)
    assert [len(p) for p in parts] == [4, 3, 3]
    assert sorted(sum(parts, [])) == list(range(10))
    with pytest.raises(ValueError):
        partition_round_robin([1], 0)


# -- IO pattern generators ----------------------------------------------------

def _rng(seed=0):
    import numpy as np

    return np.random.default_rng(seed)


def test_uniform_covers_space():
    from repro.workloads import uniform

    addrs = uniform(_rng(), logical_pages=100, count=5000)
    assert addrs.min() >= 0 and addrs.max() < 100
    assert len(set(addrs.tolist())) > 90  # essentially full coverage


def test_hot_cold_skew():
    from repro.workloads import hot_cold

    addrs = hot_cold(_rng(), logical_pages=1000, count=20000,
                     hot_fraction=0.2, hot_probability=0.8)
    hot_hits = int((addrs < 200).sum())
    assert 0.75 < hot_hits / 20000 < 0.85  # ~80% to the hot 20%


def test_zipfian_rank_ordering():
    from repro.workloads import zipfian
    import numpy as np

    addrs = zipfian(_rng(), logical_pages=50, count=30000, s=1.2)
    counts = np.bincount(addrs, minlength=50)
    assert counts[0] > counts[10] > counts[40]  # popularity decays with rank


def test_sequential_wraps():
    from repro.workloads import sequential

    addrs = sequential(logical_pages=10, count=25, start=7)
    assert addrs[:5].tolist() == [7, 8, 9, 0, 1]
    assert len(addrs) == 25


def test_pattern_validation():
    import pytest

    from repro.workloads import hot_cold, sequential, uniform, zipfian

    with pytest.raises(ValueError):
        uniform(_rng(), 0, 5)
    with pytest.raises(ValueError):
        hot_cold(_rng(), 10, 5, hot_fraction=0.0)
    with pytest.raises(ValueError):
        zipfian(_rng(), 10, 5, s=0)
    with pytest.raises(ValueError):
        sequential(10, 5, start=10)


def test_patterns_deterministic_per_seed():
    from repro.workloads import uniform, zipfian

    assert (uniform(_rng(3), 100, 50) == uniform(_rng(3), 100, 50)).all()
    assert (zipfian(_rng(3), 100, 50) == zipfian(_rng(3), 100, 50)).all()
