"""Executes a :class:`~repro.faults.plan.FaultPlan` against live devices.

One injector process per planned fault: sleep (on a daemon timer, so chaos
never keeps a drained simulation alive) until the fault's time, flip the
fault state installed on the target device, and — for bounded faults —
sleep again and recover.  Crash kinds also SIGKILL every in-situ process on
the device, so minions running at the moment of failure die the way they
would on real hardware; the agent reports them ``ABORTED`` (retryable)
rather than ``TIMEOUT``.

State objects are installed lazily: a device never named by the plan keeps
``faults = None`` and its hot path is untouched, preserving bit-identical
schedules for fault-free runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Mapping

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.state import AgentFaultState, DeviceFaultState
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.sim import Simulator, Tracer
from repro.sim.trace import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.ssd.compstor import CompStorSSD

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules a plan's faults onto a set of CompStor devices.

    ``targets`` maps ``(node_index, device_name)`` to the device assembly —
    device names repeat across nodes (every node has a ``compstor0``), so
    the pair is the fleet-wide identity.
    """

    def __init__(
        self,
        sim: Simulator,
        targets: Mapping[tuple[int, str], "CompStorSSD"],
        plan: FaultPlan,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.sim = sim
        self.targets = dict(targets)
        self.plan = plan
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._m_injected = self.metrics.counter(
            "faults.injected", "faults injected, by kind and target"
        )
        self._m_recovered = self.metrics.counter(
            "faults.recovered", "bounded faults that reached recovery, by kind and target"
        )
        #: ``(sim_time, description)`` log in application order — the chaos
        #: determinism tests compare this across runs.
        self.applied: list[tuple[float, str]] = []
        self.minions_killed = 0
        self._started = False

    # -- construction helpers ------------------------------------------------
    @classmethod
    def for_fleet(
        cls,
        fleet,
        plan: FaultPlan,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> "FaultInjector":
        targets = {
            (node_index, ssd.name): ssd
            for node_index, node in enumerate(fleet.nodes)
            for ssd in node.compstors
        }
        return cls(fleet.sim, targets, plan, metrics=metrics, tracer=tracer)

    @classmethod
    def for_node(
        cls,
        node,
        plan: FaultPlan,
        node_index: int = 0,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> "FaultInjector":
        targets = {(node_index, ssd.name): ssd for ssd in node.compstors}
        return cls(node.sim, targets, plan, metrics=metrics, tracer=tracer)

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "FaultInjector":
        """Arm the plan: one daemon-timed process per fault event."""
        if self._started:
            raise RuntimeError("injector already started")
        self._started = True
        for event in self.plan.events():
            if event.target not in self.targets:
                raise KeyError(
                    f"fault targets unknown device node{event.node}/{event.device} "
                    f"(have: {sorted(self.targets)})"
                )
            self.sim.process(
                self._runner(event), name=f"fault.{event.kind.value}@{event.device}"
            )
        return self

    def _runner(self, event: FaultEvent) -> Generator:
        if event.time > self.sim.now:
            yield self.sim.timeout(event.time - self.sim.now, daemon=True)
        self._apply(event)
        if event.duration is not None:
            yield self.sim.timeout(event.duration, daemon=True)
            self._recover(event)
        return None

    # -- state installation ----------------------------------------------------
    def device_state(self, node: int, device: str) -> DeviceFaultState:
        """The NVMe-level fault state for a target, installing it if absent."""
        ssd = self.targets[(node, device)]
        if ssd.controller.faults is None:
            # dedicated stream: fault draws never perturb media randomness
            ssd.controller.faults = DeviceFaultState(
                rng=self.sim.rng(f"faults.n{node}.{device}")
            )
        return ssd.controller.faults

    def agent_state(self, node: int, device: str) -> AgentFaultState:
        """The agent-level fault state for a target, installing it if absent."""
        ssd = self.targets[(node, device)]
        if ssd.agent.faults is None:
            ssd.agent.faults = AgentFaultState()
        return ssd.agent.faults

    # -- fault application -----------------------------------------------------
    def _tag(self, event: FaultEvent) -> str:
        return f"node{event.node}/{event.device}"

    def _apply(self, event: FaultEvent) -> None:
        node, device = event.target
        ssd = self.targets[event.target]
        if event.kind is FaultKind.DEVICE_CRASH:
            dev = self.device_state(node, device)
            dev.crashed = True
            dev.crashes += 1
            # the whole device is gone: its agent and every in-situ process
            self.agent_state(node, device).down = True
            self._kill_in_situ(ssd, "fault.device-crash")
        elif event.kind is FaultKind.AGENT_CRASH:
            agent = self.agent_state(node, device)
            agent.down = True
            agent.crashes += 1
            self._kill_in_situ(ssd, "fault.agent-crash")
        elif event.kind is FaultKind.TRANSIENT:
            self.device_state(node, device).transient_fraction = event.fraction
        else:  # LIMP
            self.device_state(node, device).limp_factor = event.factor
        self.applied.append((self.sim.now, event.describe()))
        self.tracer.emit(
            self.sim.now, "faults", "fault.injected",
            fault=event.kind.value, target=self._tag(event),
        )
        if self.metrics.enabled:
            self._m_injected.inc(kind=event.kind.value, target=self._tag(event))

    def _recover(self, event: FaultEvent) -> None:
        node, device = event.target
        if event.kind is FaultKind.DEVICE_CRASH:
            dev = self.device_state(node, device)
            dev.crashed = False
            dev.recoveries += 1
            agent = self.agent_state(node, device)
            agent.down = False
            agent.restarts += 1
        elif event.kind is FaultKind.AGENT_CRASH:
            agent = self.agent_state(node, device)
            agent.down = False
            agent.restarts += 1
        elif event.kind is FaultKind.TRANSIENT:
            self.device_state(node, device).transient_fraction = 0.0
        else:  # LIMP
            self.device_state(node, device).limp_factor = 1.0
        self.applied.append((self.sim.now, f"recovered: {event.describe()}"))
        self.tracer.emit(
            self.sim.now, "faults", "fault.recovered",
            fault=event.kind.value, target=self._tag(event),
        )
        if self.metrics.enabled:
            self._m_recovered.inc(kind=event.kind.value, target=self._tag(event))

    def _kill_in_situ(self, ssd: "CompStorSSD", reason: str) -> None:
        """SIGKILL every live process on the device's embedded OS.

        The agent's waiters see ``Interrupt(reason)``; the ``fault.`` prefix
        tells the agent this was infrastructure death (``ABORTED``), not its
        own watchdog (``TIMEOUT``).
        """
        os_ = ssd.isps.os
        for pid in sorted(os_.process_table):
            if os_.process_table[pid].alive and os_.kill(pid, reason):
                self.minions_killed += 1

    # -- reporting -------------------------------------------------------------
    def recovery_counts(self) -> dict[str, int]:
        """Fleet-wide fault/recovery tallies from the installed states."""
        out = {
            "device_crashes": 0,
            "device_recoveries": 0,
            "agent_crashes": 0,
            "agent_restarts": 0,
            "commands_refused": 0,
            "transients_injected": 0,
            "minions_killed": self.minions_killed,
        }
        for ssd in self.targets.values():
            dev = ssd.controller.faults
            if dev is not None:
                out["device_crashes"] += dev.crashes
                out["device_recoveries"] += dev.recoveries
                out["commands_refused"] += dev.commands_refused
                out["transients_injected"] += dev.transients_injected
            agent = ssd.agent.faults
            if agent is not None:
                out["agent_crashes"] += agent.crashes
                out["agent_restarts"] += agent.restarts
        return out
