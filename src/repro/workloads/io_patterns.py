"""Logical-IO access-pattern generators.

The FTL ablations (write amplification, GC interference, wear) all need
address streams with controlled locality.  These generators produce lpn
sequences deterministically from a NumPy RNG:

- :func:`uniform` — uniformly random over the logical space;
- :func:`hot_cold` — the classic 80/20 (or any f/r) skew;
- :func:`zipfian` — rank-skewed popularity (web/object traffic);
- :func:`sequential` — streaming writes with wrap-around.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hot_cold", "sequential", "uniform", "zipfian"]


def uniform(rng: np.random.Generator, logical_pages: int, count: int) -> np.ndarray:
    """Uniformly random lpns."""
    if logical_pages < 1 or count < 0:
        raise ValueError("logical_pages must be >=1 and count >=0")
    return rng.integers(0, logical_pages, size=count)


def hot_cold(
    rng: np.random.Generator,
    logical_pages: int,
    count: int,
    hot_fraction: float = 0.2,
    hot_probability: float = 0.8,
) -> np.ndarray:
    """Skewed traffic: ``hot_probability`` of accesses hit the first
    ``hot_fraction`` of the address space."""
    if not 0 < hot_fraction < 1 or not 0 < hot_probability < 1:
        raise ValueError("hot_fraction and hot_probability must be in (0, 1)")
    hot_pages = max(1, int(logical_pages * hot_fraction))
    is_hot = rng.random(count) < hot_probability
    hot_addrs = rng.integers(0, hot_pages, size=count)
    cold_addrs = rng.integers(hot_pages, max(hot_pages + 1, logical_pages), size=count)
    return np.where(is_hot, hot_addrs, cold_addrs)


def zipfian(
    rng: np.random.Generator,
    logical_pages: int,
    count: int,
    s: float = 1.1,
) -> np.ndarray:
    """Zipf-distributed lpns (rank-1 page is the hottest)."""
    if s <= 0:
        raise ValueError("s must be positive")
    ranks = np.arange(1, logical_pages + 1, dtype=float)
    weights = ranks**-s
    weights /= weights.sum()
    return rng.choice(logical_pages, size=count, p=weights)


def sequential(logical_pages: int, count: int, start: int = 0) -> np.ndarray:
    """Streaming addresses with wrap-around."""
    if not 0 <= start < logical_pages:
        raise ValueError("start out of range")
    return (start + np.arange(count)) % logical_pages
