"""The flash translation layer facade.

:class:`FlashTranslationLayer` exposes a logical page device:

- ``read(lpn)`` — write-buffer hit or flash read + ECC decode;
- ``write(lpn, data)`` — fast-release: completes when the data lands in the
  write buffer; a background flusher destages to NAND;
- ``trim(lpns)`` — drops mappings (and buffered copies) without media work;
- ``flush()`` — barrier draining the write buffer.

Concurrency model: page allocation is synchronous and per-``(stream, die)``
locks serialise allocate+program, so NAND's in-order-within-block rule holds
while writes still stripe across dies.  Reads hold a per-block reader count
that GC quiesces before erasing a victim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.ecc import EccEngine, UncorrectableError
from repro.flash.package import FlashArray
from repro.ftl.allocator import BlockAllocator, OutOfSpaceError
from repro.ftl.gc import CostBenefitPolicy, GarbageCollector, GcPolicy, GreedyPolicy
from repro.ftl.mapping import UNMAPPED, PageMap
from repro.ftl.write_buffer import WriteBuffer
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.sim import Resource, Simulator, Tracer
from repro.sim.trace import NULL_TRACER

__all__ = ["FlashTranslationLayer", "FtlConfig", "LogicalIOError"]


class LogicalIOError(Exception):
    """Logical I/O failure: uncorrectable media error or device full."""


_POLICIES: dict[str, type[GcPolicy]] = {
    "greedy": GreedyPolicy,
    "cost-benefit": CostBenefitPolicy,
}


@dataclass(frozen=True, slots=True)
class FtlConfig:
    """FTL tuning knobs.

    ``op_ratio`` is the over-provisioning fraction: exported logical
    capacity is ``(1 - op_ratio)`` of physical.  Watermarks default to one
    free block per die (low) and two per die (high).
    """

    op_ratio: float = 0.125
    write_buffer_pages: int = 256
    gc_policy: str = "greedy"
    gc_low_watermark: int | None = None
    gc_high_watermark: int | None = None
    wl_delta: int = 0
    buffer_hit_latency: float = 500e-9
    trim_latency: float = 5e-6
    reader_quiesce_delay: float = 5e-6
    scrub_interval: float | None = 60.0  # None disables the patrol scrubber
    scrub_margin: float = 0.5
    #: DRAM read cache in pages (0 = disabled).  Off by default so the
    #: calibrated experiments measure media, not cache; repeated-read
    #: workloads can opt in.
    read_cache_pages: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.op_ratio < 1.0:
            raise ValueError("op_ratio must be in (0, 1)")
        if self.gc_policy not in _POLICIES:
            raise ValueError(f"unknown gc_policy {self.gc_policy!r}; use {sorted(_POLICIES)}")
        if self.write_buffer_pages < 1:
            raise ValueError("write_buffer_pages must be >= 1")
        if self.read_cache_pages < 0:
            raise ValueError("read_cache_pages must be >= 0")


class FlashTranslationLayer:
    """Logical page device over a :class:`FlashArray` + :class:`EccEngine`."""

    HOST = BlockAllocator.HOST
    GC = BlockAllocator.GC

    def __init__(
        self,
        sim: Simulator,
        flash: FlashArray,
        ecc: EccEngine,
        config: FtlConfig | None = None,
        name: str = "ftl",
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.sim = sim
        self.flash = flash
        self.ecc = ecc
        self.config = config or FtlConfig()
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        # Bound instruments: the read/write/destage paths run per page, so
        # the labels are resolved once here and each hook is a single
        # enabled-test when observability is off.
        m = self.metrics
        self._m_reads = m.counter(
            "ftl.host_reads", "logical page reads served"
        ).labels(device=name)
        self._m_writes = m.counter(
            "ftl.host_writes", "logical page writes accepted"
        ).labels(device=name)
        self._m_buffer_hits = m.counter(
            "ftl.buffer_read_hits", "reads served from the fast-release write buffer"
        ).labels(device=name)
        self._m_destages = m.counter(
            "ftl.write_buffer.destages", "write-buffer pages destaged to NAND"
        ).labels(device=name)
        self._m_wa = m.gauge(
            "ftl.write_amplification", "NAND programs / host programs, sampled on destage"
        ).labels(device=name)
        self._m_gc_collections = m.counter(
            "ftl.gc.collections", "garbage-collection block reclaims"
        ).labels(device=name)
        self._m_gc_moves = m.counter(
            "ftl.gc.pages_relocated", "valid pages moved by the collector"
        ).labels(device=name)
        self._m_free_blocks = m.gauge(
            "ftl.free_blocks", "allocator free pool, sampled after GC reclaims"
        ).labels(device=name)

        geo = flash.geometry
        self.logical_pages = int(geo.pages * (1.0 - self.config.op_ratio))
        if self.logical_pages < 1:
            raise ValueError("over-provisioning leaves no logical capacity")
        slack_pages = geo.pages - self.logical_pages
        if slack_pages < 2 * geo.pages_per_block:
            raise ValueError(
                "over-provisioning slack must be at least two blocks "
                f"({2 * geo.pages_per_block} pages) for deadlock-free GC; "
                f"got {slack_pages} pages — raise op_ratio or enlarge the array"
            )
        self.page_map = PageMap(geo, self.logical_pages)
        self.allocator = BlockAllocator(flash, streams=2)
        self._die_locks = {
            (stream, die): Resource(sim, capacity=1, name=f"{name}.s{stream}d{die}")
            for stream in (self.HOST, self.GC)
            for die in range(geo.dies)
        }
        self._rr_die = {self.HOST: 0, self.GC: 0}
        # Hot-path constants hoisted out of the per-page read/write methods
        # (config is frozen and the geometry never changes after build).
        self._buffer_hit_latency = self.config.buffer_hit_latency
        self._read_cache_pages = self.config.read_cache_pages
        self._pages_per_block = geo.pages_per_block
        self._readers = np.zeros(geo.blocks, dtype=np.int32)
        # In-flight programs per block: a page is allocated synchronously but
        # programmed/bound after yields; GC must not victimise or erase a
        # block while such a program is pending.
        self._writers = np.zeros(geo.blocks, dtype=np.int32)
        self.reader_quiesce_delay = self.config.reader_quiesce_delay

        low = self.config.gc_low_watermark
        high = self.config.gc_high_watermark
        if low is None:
            low = geo.dies
        if high is None:
            high = max(low + 1, 2 * geo.dies)
        policy = _POLICIES[self.config.gc_policy]()
        self.gc = GarbageCollector(self, policy, low, high, wl_delta=self.config.wl_delta)

        self.write_buffer = WriteBuffer(
            sim,
            self.config.write_buffer_pages,
            destage=self._destage,
            name=f"{name}.wbuf",
            workers=max(4, geo.dies),  # destage bandwidth scales with dies
        )

        self._destaging: set[int] = set()
        # blocks being reclaimed right now (GC victim or scrub refresh) —
        # prevents the collector and the scrubber double-erasing one block
        self._reclaiming: set[int] = set()
        # monotonically increasing write sequence stamped into each page's
        # OOB area; power-off recovery replays "latest sequence wins"
        self._write_seq = 0

        from repro.ftl.scrubber import PatrolScrubber

        self.scrubber = PatrolScrubber(
            self,
            interval=self.config.scrub_interval or 60.0,
            margin=self.config.scrub_margin,
            enabled=self.config.scrub_interval is not None,
        )

        # optional LRU read cache (controller DRAM)
        from collections import OrderedDict

        self._read_cache: "OrderedDict[int, bytes | None]" = OrderedDict()

        # statistics
        self.host_reads = 0
        self.host_writes = 0
        self.host_pages_programmed = 0
        self.buffer_read_hits = 0
        self.read_cache_hits = 0
        self.trims = 0
        self.uncorrectable_reads = 0

    # -- capacity ------------------------------------------------------------
    @property
    def logical_capacity_bytes(self) -> int:
        return self.logical_pages * self.flash.geometry.page_size

    @property
    def page_size(self) -> int:
        return self.flash.geometry.page_size

    def write_amplification(self) -> float:
        """Total NAND programs / host-initiated programs."""
        if self.host_pages_programmed == 0:
            return 0.0
        return self.flash.stats.programs / self.host_pages_programmed

    def block_readers(self, block_index: int) -> int:
        return int(self._readers[block_index])

    def block_writers(self, block_index: int) -> int:
        return int(self._writers[block_index])

    # -- logical operations -----------------------------------------------------
    def read(self, lpn: int) -> Generator:
        """Read one logical page; returns ``bytes | None`` (None = unwritten/
        trimmed, reads as empty)."""
        self._check_lpn(lpn)
        self.host_reads += 1
        if self.metrics.enabled:
            self._m_reads.inc()
        hit, data = self.write_buffer.peek(lpn)
        if hit:
            self.buffer_read_hits += 1
            if self.metrics.enabled:
                self._m_buffer_hits.inc()
            yield self.sim.timeout(self._buffer_hit_latency)
            return data
        if self._read_cache_pages and lpn in self._read_cache:
            self._read_cache.move_to_end(lpn)
            self.read_cache_hits += 1
            yield self.sim.timeout(self._buffer_hit_latency)
            return self._read_cache[lpn]
        ppn = self.page_map.lookup(lpn)
        if ppn == UNMAPPED:
            yield self.sim.timeout(self._buffer_hit_latency)
            return None
        geo = self.flash.geometry
        block_index = ppn // self._pages_per_block
        self._readers[block_index] += 1
        try:
            result = yield from self.flash.read_page(geo.page_address(ppn))
            try:
                yield from self.ecc.decode_page(geo.page_size, result.raw_bit_errors)
            except UncorrectableError as exc:
                self.uncorrectable_reads += 1
                raise LogicalIOError(f"uncorrectable read at lpn {lpn}") from exc
        finally:
            self._readers[block_index] -= 1
        if self._read_cache_pages:
            self._cache_insert(lpn, result.data)
        return result.data

    def _cache_insert(self, lpn: int, data: bytes | None) -> None:
        cache = self._read_cache
        cache[lpn] = data
        cache.move_to_end(lpn)
        while len(cache) > self.config.read_cache_pages:
            cache.popitem(last=False)

    def write(self, lpn: int, data: bytes | None) -> Generator:
        """Write one logical page (fast-release: returns on buffer insert)."""
        self._check_lpn(lpn)
        if data is not None and len(data) > self.page_size:
            raise ValueError(f"payload {len(data)}B exceeds page size {self.page_size}B")
        self.host_writes += 1
        if self.metrics.enabled:
            self._m_writes.inc()
        self._read_cache.pop(lpn, None)  # never serve stale data post-destage
        yield from self.write_buffer.put(lpn, data)
        return None

    def trim(self, lpns: list[int] | range) -> Generator:
        """Drop mappings for a batch of logical pages."""
        for lpn in lpns:
            self._check_lpn(lpn)
        yield self.sim.timeout(self.config.trim_latency)
        for lpn in lpns:
            self.write_buffer.discard(lpn)
            self._read_cache.pop(lpn, None)
            # A destage for this lpn may be in flight; its bind would
            # resurrect the mapping, so wait it out before unbinding.
            while lpn in self._destaging:
                yield self.sim.timeout(self.config.reader_quiesce_delay)
            self.page_map.unbind(lpn)
            self.trims += 1
        self.gc.kick()
        return None

    def flush(self) -> Generator:
        """Barrier: all buffered writes durable on flash."""
        yield from self.write_buffer.flush()
        return None

    # -- internal program paths --------------------------------------------------
    def _destage(self, lpn: int, data: bytes | None) -> Generator:
        self._destaging.add(lpn)
        try:
            yield from self._program(lpn, data, stream=self.HOST, expect_ppn=None)
        finally:
            self._destaging.discard(lpn)
        self.host_pages_programmed += 1
        if self.metrics.enabled:
            self._m_destages.inc()
            self._m_wa.set(self.write_amplification())

    def relocate(self, lpn: int, old_ppn: int) -> Generator:
        """GC relocation: read the valid copy, program it via the GC stream.

        The source page's OOB stamp is carried over unchanged, so a
        relocated copy never outranks a concurrent host write of the same
        lpn during power-off recovery.
        """
        geo = self.flash.geometry
        addr = geo.page_address(old_ppn)
        result = yield from self.flash.read_page(addr)
        try:
            yield from self.ecc.decode_page(geo.page_size, result.raw_bit_errors)
        except UncorrectableError as exc:
            raise LogicalIOError(f"uncorrectable GC read at lpn {lpn}") from exc
        oob = self.flash.page_oob(addr)
        yield from self._program(
            lpn, result.data, stream=self.GC, expect_ppn=old_ppn, oob=oob
        )
        return None

    def _program(
        self,
        lpn: int,
        data: bytes | None,
        stream: int,
        expect_ppn: int | None,
        oob: dict | None = None,
    ) -> Generator:
        """Allocate + program + bind, honouring per-(stream, die) ordering.

        ``expect_ppn`` implements GC's compare-and-bind: if the mapping moved
        (host overwrote during relocation) the fresh copy is left unbound —
        it is reclaimed as garbage on the GC block's next collection.
        """
        geo = self.flash.geometry
        dies = geo.dies
        if oob is None:
            self._write_seq += 1
            oob = {"lpn": lpn, "seq": self._write_seq}
        stalls = 0
        while True:
            for _ in range(dies):
                die = self._rr_die[stream]
                self._rr_die[stream] = (die + 1) % dies
                lock = self._die_locks[(stream, die)]
                with lock.request() as req:
                    yield req
                    try:
                        addr = self.allocator.allocate_on_die(stream, die)
                    except OutOfSpaceError:
                        continue
                    block_index = geo.block_index(addr.block_addr)
                    self._writers[block_index] += 1
                    try:
                        yield from self.ecc.encode_page(geo.page_size)
                        yield from self.flash.program_page(addr, data, oob=oob)
                        ppn = geo.page_index(addr)
                        if expect_ppn is None or self.page_map.lookup(lpn) == expect_ppn:
                            self.page_map.bind(lpn, ppn)
                    finally:
                        self._writers[block_index] -= 1
                    self._maybe_kick_gc()
                    return None
            # Host admission control: only the GC reserve remains, so stall
            # for an erase cycle while the collector reclaims space.  With
            # >= 2 blocks of OP slack (enforced at construction) the
            # collector always makes progress, so repeated stalls with an
            # idle collector mean the model was driven beyond capacity.
            self.gc.kick()
            yield self.sim.timeout(self.flash.timing.t_erase)
            stalls += 1
            if stalls >= 8 and self.gc.idle:
                raise LogicalIOError("device full: no reclaimable space")

    def _maybe_kick_gc(self) -> None:
        if self.allocator.free_blocks <= self.gc.low_watermark:
            self.gc.kick()

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(f"lpn {lpn} out of range [0, {self.logical_pages})")

    # -- power-off recovery ------------------------------------------------------
    def recover_from_flash(self) -> Generator:
        """Sudden-power-off recovery (SPOR): rebuild the logical state of a
        *fresh* FTL from the media's OOB stamps.

        Real drives replay exactly this on boot: scan every programmed
        page's spare area, keep the highest write sequence per logical page,
        and mark partially-written blocks closed (their tail pages are
        wasted; GC reclaims them).  Anything that was only in the (volatile)
        write buffer at power-cut time is gone — that is the semantics of
        an unflushed write.

        Call on a newly constructed FTL over a flash array that carries a
        previous life's data.  The scan costs simulated time (one array
        read per programmed page, pipelined per die).
        """
        from repro.flash.package import PageState

        geo = self.flash.geometry
        if self.page_map.mapped_logical_pages():
            raise RuntimeError("recover_from_flash() requires a fresh FTL")

        # 1. charge the scan cost: tR per programmed page, parallel per die
        programmed = int((self.flash.page_state == PageState.PROGRAMMED).sum())
        pages_per_die = -(-programmed // geo.dies) if programmed else 0
        yield self.sim.timeout(pages_per_die * self.flash.timing.t_read)

        # 2. latest-sequence-wins over all OOB stamps
        best: dict[int, tuple[int, int]] = {}  # lpn -> (seq, ppn)
        for ppn in range(geo.pages):
            if self.flash.page_state[ppn] != PageState.PROGRAMMED:
                continue
            oob = self.flash._oob.get(ppn)
            if not oob or "lpn" not in oob:
                continue
            lpn, seq = int(oob["lpn"]), int(oob["seq"])
            if lpn >= self.logical_pages:
                continue  # stale stamp from a larger previous namespace
            if lpn not in best or (seq, ppn) > best[lpn]:
                best[lpn] = (seq, ppn)
        for lpn, (_seq, ppn) in best.items():
            self.page_map.bind(lpn, ppn)
        self._write_seq = max((seq for seq, _ in best.values()), default=0)

        # 3. rebuild the free pool: only fully-erased blocks are free
        for block_index in range(geo.blocks):
            if int(self.flash.write_pointer[block_index]) > 0:
                self.allocator.mark_in_use(block_index)
        # 4. re-retire known-bad blocks (persisted bad-block table)
        for block_index in self.flash.failed_blocks:
            if int(self.flash.write_pointer[block_index]) > 0:
                self.allocator.retire_block(block_index)
        self.gc.kick()
        self.tracer.emit(
            self.sim.now, self.name, "ftl.recovered",
            mapped=len(best), seq=self._write_seq,
        )
        return len(best)

    # -- reporting -------------------------------------------------------------
    def health_stats(self) -> dict[str, float]:
        """Backend-agnostic health counters (the
        :class:`~repro.ftl.backend.TranslationBackend` surface SMART and
        fleet telemetry aggregate)."""
        return {
            "available_spare": self.allocator.free_blocks,
            "bad_blocks": len(self.allocator.retired),
            "gc_collections": self.gc.collections,
            "scrub_refreshes": self.scrubber.blocks_refreshed,
        }

    def stats(self) -> dict[str, float]:
        return {
            "host_reads": self.host_reads,
            "host_writes": self.host_writes,
            "host_pages_programmed": self.host_pages_programmed,
            "buffer_read_hits": self.buffer_read_hits,
            "buffer_write_hits": self.write_buffer.hits,
            "trims": self.trims,
            "gc_collections": self.gc.collections,
            "gc_pages_relocated": self.gc.pages_relocated,
            "wl_migrations": self.gc.wl_migrations,
            "write_amplification": self.write_amplification(),
            "free_blocks": self.allocator.free_blocks,
            "uncorrectable_reads": self.uncorrectable_reads,
            "scrub_refreshes": self.scrubber.blocks_refreshed,
        }
