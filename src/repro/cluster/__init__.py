"""Distributed layer: storage nodes with many CompStors, dispatch policies."""

from repro.cluster.fleet import JobReport, StorageFleet
from repro.cluster.node import StorageNode
from repro.cluster.scheduler import (
    LeastLoadedBalancer,
    MinionDispatcher,
    RoundRobinBalancer,
)

__all__ = [
    "JobReport",
    "LeastLoadedBalancer",
    "MinionDispatcher",
    "RoundRobinBalancer",
    "StorageFleet",
    "StorageNode",
]
