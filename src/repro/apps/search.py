"""Search applications: grep and a gawk-style field scanner.

These are the paper's IO-intensive workloads: little computation per byte,
dominated by how fast bytes can reach the core — which is exactly where the
in-situ flash path beats the host's PCIe path.

``grep`` supports ``-c`` (count only, the default output) and ``-i``
(case-insensitive).  Matching is line-based on raw bytes; a pattern that
straddles a page boundary is handled by carrying the unterminated tail line
into the next chunk.

``gawk`` models the common one-liner ``gawk '/pat/ {n++; s+=NF} END {...}'``:
it counts matching lines and accumulates field statistics, costing more
cycles per byte than grep (field splitting).
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import StreamingApp, UsageError
from repro.isos.loader import ExecContext, ExitStatus

__all__ = ["FilterApp", "GawkApp", "GrepApp"]


class _LineScanner(StreamingApp):
    """Streaming line-splitter with page-boundary carry."""

    def input_file(self, ctx: ExecContext) -> str:
        positional = [a for a in ctx.args if not a.startswith("-")]
        if len(positional) < 2:
            raise UsageError(f"{self.name}: usage: {self.name} [flags] PATTERN FILE")
        return positional[-1]

    def begin(self, ctx: ExecContext) -> None:
        positional = [a for a in ctx.args if not a.startswith("-")]
        self.flags = {a for a in ctx.args if a.startswith("-")}
        self.fold_case = "-i" in self.flags
        self.pattern = positional[0].encode()
        if self.fold_case:
            self.pattern = self.pattern.lower()
        self._carry = b""
        self._analytic = False
        self.lines_seen = 0
        self.setup()

    def setup(self) -> None:
        pass

    def consume(self, ctx: ExecContext, chunk: bytes | None, take: int) -> None:
        if chunk is None:
            self._analytic = True
            return
        data = self._carry + chunk
        cut = data.rfind(b"\n")
        if cut < 0:
            self._carry = data  # no complete line yet
            return
        self._carry = data[cut + 1:]  # unterminated tail
        self.scan_block(data[: cut + 1])

    def scan_block(self, block: bytes) -> None:
        """Process a block of *complete* lines (ends with a newline).

        The default walks line by line; count-only subclasses override it
        with whole-block scans (``bytes.find`` / ``bytes.count`` run in C,
        so they beat any per-line Python loop by an order of magnitude).
        """
        lines = block.split(b"\n")
        lines.pop()  # split artifact after the final newline
        for line in lines:
            self.lines_seen += 1
            self.on_line(line)

    def drain(self) -> None:
        if self._carry:
            self.lines_seen += 1
            self.on_line(self._carry)
            self._carry = b""

    def on_line(self, line: bytes) -> None:
        raise NotImplementedError


class GrepApp(_LineScanner):
    """``grep [-c] [-i] PATTERN FILE``."""

    name = "grep"

    def setup(self) -> None:
        self.matches = 0

    def on_line(self, line: bytes) -> None:
        haystack = line.lower() if self.fold_case else line
        if self.pattern in haystack:
            self.matches += 1

    def scan_block(self, block: bytes) -> None:
        # Count matching lines without materialising them: find the next
        # occurrence, skip to the end of its line, repeat.  Lowercasing the
        # whole block for -i matches the per-line lowering exactly (\n is
        # unaffected by lower()).
        if self.fold_case:
            block = block.lower()
        self.lines_seen += block.count(b"\n")
        find = block.find
        pos = find(self.pattern)
        while pos >= 0:
            self.matches += 1
            nl = find(b"\n", pos)
            if nl < 0:
                break
            pos = find(self.pattern, nl + 1)

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        self.drain()
        if self._analytic:
            return ExitStatus(
                code=0,
                stdout=b"",
                detail={"bytes_scanned": total_bytes, "analytic": True},
            )
        # real grep exits 1 when nothing matched
        code = 0 if self.matches else 1
        return ExitStatus(
            code=code,
            stdout=str(self.matches).encode(),
            detail={"matches": self.matches, "lines": self.lines_seen,
                    "bytes_scanned": total_bytes},
        )
        yield  # pragma: no cover - generator protocol


class FilterApp(_LineScanner):
    """``filter PATTERN FILE`` — emit the matching lines themselves.

    Unlike ``grep -c`` (whose result is a few bytes regardless of input),
    filter's output scales with the match *selectivity* — and the output is
    exactly what travels back over the storage interface when run in-situ.
    The selectivity ablation bench uses this to locate the point where
    shipping results costs as much as shipping the data.
    """

    name = "filter"

    def setup(self) -> None:
        self.matched: list[bytes] = []

    def on_line(self, line: bytes) -> None:
        haystack = line.lower() if self.fold_case else line
        if self.pattern in haystack:
            self.matched.append(line)

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        self.drain()
        if self._analytic:
            return ExitStatus(code=0, stdout=b"",
                              detail={"bytes_scanned": total_bytes, "analytic": True})
        stdout = b"\n".join(self.matched)
        return ExitStatus(
            code=0 if self.matched else 1,
            stdout=stdout,
            detail={
                "matches": len(self.matched),
                "bytes_scanned": total_bytes,
                "bytes_emitted": len(stdout),
                "selectivity": len(stdout) / total_bytes if total_bytes else 0.0,
            },
        )
        yield  # pragma: no cover - generator protocol


class GawkApp(_LineScanner):
    """``gawk PATTERN FILE`` — match + field statistics per line."""

    name = "gawk"

    def setup(self) -> None:
        self.matches = 0
        self.fields_total = 0

    def on_line(self, line: bytes) -> None:
        fields = line.split()
        self.fields_total += len(fields)
        if self.pattern in line:
            self.matches += 1

    def scan_block(self, block: bytes) -> None:
        # Fields never span a newline, so splitting the whole block on
        # whitespace gives the same total as summing per-line splits.
        self.lines_seen += block.count(b"\n")
        self.fields_total += len(block.split())
        find = block.find
        pos = find(self.pattern)
        while pos >= 0:
            self.matches += 1
            nl = find(b"\n", pos)
            if nl < 0:
                break
            pos = find(self.pattern, nl + 1)

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        self.drain()
        if self._analytic:
            return ExitStatus(code=0, stdout=b"", detail={"bytes_scanned": total_bytes,
                                                          "analytic": True})
        out = f"{self.matches} {self.fields_total}"
        return ExitStatus(
            code=0,
            stdout=out.encode(),
            detail={
                "matches": self.matches,
                "fields": self.fields_total,
                "lines": self.lines_seen,
                "bytes_scanned": total_bytes,
            },
        )
        yield  # pragma: no cover - generator protocol
