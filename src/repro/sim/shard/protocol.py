"""Conservative time synchronization between partitioned event loops.

One scenario is split into *domains*: a host domain (the client/workload
side of the PCIe boundary) and one cell per device (the SSD plus its FTL/
ECC/NVMe consumers).  Domains exchange :class:`ShardMessage` envelopes —
NVMe submissions, minion results, telemetry — and never touch each other's
state directly, so each can run its own :class:`~repro.sim.Simulator`.

Synchronization is **conservative** (Chandy-Misra-Bryant style): a domain
only processes events it can prove no future cross-boundary message will
invalidate.  The proof rests on *lookahead*, which is asymmetric here:

- cell -> host (``to_host``): the minimum latency of one ``pcie.link``
  hop — completions and minion results cross at least one fabric link;
- host -> cell (``to_cell``): the link hop plus a modeled host dispatch
  window (interrupt service, submission-path work).  The window is a
  fidelity knob (``sharding.window_us``): it adds bounded, deterministic
  latency to host-issued work and in exchange makes the number of sync
  rounds proportional to *dispatch bursts*, not simulated time over a
  raw half-microsecond link latency.

A cell's safe horizon must consider not just the host's own next action
but the earliest the host could *react to any other cell's send*: cell
``j`` can act at ``na_j``, the host hears of it at ``na_j + to_host``, and
its response reaches cell ``i`` at ``na_j + to_host + to_cell``.  The
engine therefore grants per-cell bounds ``min(host_na, min_{j != i}(na_j))
+ to_host) + to_cell`` — a cell's *own* next action is excluded, because
anything the host learns from cell ``i`` itself is covered by the cutoff
below.  Two refinements keep rounds proportional to traffic:

- **idle free-run** — when the host and every *other* cell are provably
  inert, cell ``i`` may run arbitrarily far ahead (``bound = inf``);
  likewise the host when all cells are inert.  This collapses
  single-domain tail phases into one window.
- **first-send cutoff** — a domain's *own* send opens a reply channel: the
  earliest a peer's reaction can land back is ``send + to_host + to_cell``
  (the round trip).  :meth:`SimDomain.run_segment` therefore stops itself
  there, whatever horizon it was granted, and the engine synchronizes
  before continuing.

The engine is deliberately topology-star (host <-> cells; cells never talk
to each other — device-to-device traffic crosses the host in this model,
as it does on a real PCIe tree).  All horizon decisions are functions of
*global* domain state (minima over every cell), never of how cells are
packed into OS processes — which is why schedules are byte-identical at
any shard count and on any backend, the property the differential suite
pins down.

This module is model-agnostic: it knows Simulators and messages, not SSDs.
The real device cells live in :mod:`repro.sim.shard.cell`; the Hypothesis
property suite drives the same engine with toy domains.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from heapq import heappop as _heappop
from typing import Any, Callable, Protocol

from repro.sim.core import SimulationError, Simulator, Timeout

__all__ = [
    "CellStep",
    "ConservativeEngine",
    "EngineStats",
    "ShardMessage",
    "SimDomain",
    "plan_shards",
    "sequential_stepper",
]

_INF = float("inf")


@dataclass(frozen=True, slots=True)
class ShardMessage:
    """One cross-boundary event envelope.

    ``seq`` is per-sender monotonic; together with ``send_time`` and the
    sender name it gives every message a total order, so merged inboxes are
    canonical regardless of which process produced them.
    """

    src: str
    dst: str
    send_time: float
    seq: int
    kind: str
    payload: Any


def plan_shards(n_cells: int, shards: int) -> list[range]:
    """Pack ``n_cells`` ring positions into contiguous, balanced groups.

    Contiguity keeps a node's devices (consecutive ring positions, hence
    consecutive replica chains) in as few groups as possible; balance keeps
    the per-round critical path even.  More shards than cells clamps to one
    cell per group — the grouping is an execution detail and never changes
    results, so clamping is safe.
    """
    if n_cells < 1:
        raise ValueError("n_cells must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    groups = min(shards, n_cells)
    base, extra = divmod(n_cells, groups)
    out: list[range] = []
    start = 0
    for g in range(groups):
        size = base + (1 if g < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


class SimDomain:
    """One partition: a :class:`Simulator` plus an outbox and an inbox hook.

    Subclasses implement :meth:`_on_message` (what a delivered envelope
    does) and call :meth:`send` from model code.  Everything else — windowed
    execution with the first-send cutoff, delivery scheduling, conservation
    counters — is shared between real device cells and test toys.
    """

    def __init__(self, name: str, sim: Simulator, reply_latency: float):
        if reply_latency <= 0:
            raise ValueError("reply_latency must be positive")
        self.name = name
        self.sim = sim
        #: Minimum round trip: the earliest a peer's *reaction* to this
        #: domain's own send can land back (``to_host + to_cell``).
        self.reply_latency = reply_latency
        self.outbox: list[ShardMessage] = []
        self._seq = itertools.count()
        self.sent = 0
        self.received = 0
        #: (message, deliver_time, receiver clock at injection) — the
        #: evidence trail the property suite checks lookahead safety on.
        self.delivery_log: list[tuple[ShardMessage, float, float]] = []

    # -- engine-facing surface ------------------------------------------------
    def next_action(self) -> float:
        """Earliest time this domain could possibly act (``inf`` if it
        cannot act until something is delivered).

        Daemon events (housekeeping timers) never initiate cross-boundary
        traffic, but using ``peek()`` — which may surface one — only makes
        the bound *smaller*, i.e. more conservative, never unsafe.
        """
        return self.sim.peek() if self.sim.live_events > 0 else _INF

    def idle(self) -> bool:
        return self.sim.live_events == 0

    def deliver(self, message: ShardMessage, at: float) -> None:
        """Inject a message: its effect fires at ``at`` on this domain's sim.

        The horizon algebra guarantees ``at`` is ahead of the local clock
        whenever this domain still has live work.  The one exception is a
        receiver that drained idle and coasted ahead of the sender (the
        teardown corner): the doorbell rings an already-parked consumer,
        which notices it "now" — deterministically, because the round
        structure is grouping-independent.  A past delivery into a *busy*
        domain would be a genuine causality bug, so that still raises.
        """
        now = self.sim.now
        if at < now:
            if self.sim.live_events > 0:
                raise SimulationError(
                    f"{self.name}: delivery at {at} behind busy clock {now}"
                )
            at = now
        self.received += 1
        self.delivery_log.append((message, at, now))
        timeout = Timeout(self.sim, at - now, message)
        timeout.callbacks.append(lambda _ev, m=message: self._on_message(m))

    def can_skip(self, horizon: float) -> bool:
        """True when :meth:`run_segment` would provably process nothing.

        A pure fast path — behavior with the segment skipped is identical,
        the caller just saves the call (and, for device cells, the ID-scope
        swap).  Only valid when nothing was delivered this round.
        """
        queue = self.sim._queue
        if horizon == _INF:
            return self.sim._live == 0
        return not queue or queue[0][0] >= horizon

    def drain_outbox(self) -> list[ShardMessage]:
        out = self.outbox
        self.outbox = []
        return out

    def run_segment(self, horizon: float) -> int:
        """Run events strictly before ``horizon``, stopping early at
        ``first_send + reply_latency``; returns the events processed.

        ``horizon == inf`` is free-run: the peer granting it is provably
        inert, so only the domain's own sends (which open a reply channel)
        can bound the segment; the drain then stops when live work is gone,
        leaving daemon timers pending.  Until the first send the cutoff can
        tighten mid-run, so events step one at a time; after it the bound
        is frozen and the batched kernel drain (``Simulator.run_window``)
        takes over.
        """
        sim = self.sim
        queue = sim._queue
        outbox = self.outbox
        free = horizon == _INF
        count = 0
        while not outbox:
            if not queue or (free and sim._live == 0):
                return count
            when, _prio, _seq, daemon, event = queue[0]
            if when >= horizon:
                return count
            _heappop(queue)  # inline step(): pop, advance, fire
            if not daemon:
                sim._live -= 1
            sim._now = when
            sim.events_processed += 1
            event._run_callbacks()
            count += 1
        cutoff = outbox[0].send_time + self.reply_latency
        bound = cutoff if cutoff < horizon else horizon
        return count + sim.run_window(bound, stop_when_idle=free)

    # -- model-facing surface -------------------------------------------------
    def send(self, dst: str, kind: str, payload: Any) -> ShardMessage:
        """Queue an envelope for the engine to route after this segment."""
        message = ShardMessage(
            src=self.name,
            dst=dst,
            send_time=self.sim.now,
            seq=next(self._seq),
            kind=kind,
            payload=payload,
        )
        self.outbox.append(message)
        self.sent += 1
        return message

    def _on_message(self, message: ShardMessage) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass
class CellStep:
    """What one cell reports back from a synchronization round."""

    next_action: float
    outbox: list[ShardMessage]
    events: int


#: Runs every cell for one round: ``stepper(bounds, deliveries)`` where
#: ``bounds`` maps cell name -> safe horizon and ``deliveries`` maps cell
#: name -> [(message, deliver_time), ...]; returns ``{cell_name: CellStep}``
#: for *all* cells, in ring order.  The sequential backend loops
#: in-process; the process backend fans groups out to spawn workers.  The
#: engine's horizon algebra never sees the difference.
CellStepper = Callable[
    [dict[str, float], dict[str, list[tuple[ShardMessage, float]]]],
    dict[str, "CellStep"],
]


class HostLike(Protocol):  # pragma: no cover - typing only
    name: str

    def next_action(self) -> float: ...
    def idle(self) -> bool: ...
    def deliver(self, message: ShardMessage, at: float) -> None: ...
    def drain_outbox(self) -> list[ShardMessage]: ...
    def run_segment(self, horizon: float) -> int: ...

    @property
    def sim(self) -> Simulator: ...


@dataclass
class EngineStats:
    """Conservation + progress accounting for one engine run."""

    rounds: int = 0
    host_events: int = 0
    cell_events: int = 0
    sent: int = 0
    delivered: int = 0
    gvt: float = 0.0
    #: per-round (gvt, cell_bound, host_bound) — the window log the
    #: monotonicity property checks.
    windows: list[tuple[float, float, float]] = field(default_factory=list)

    @property
    def in_flight(self) -> int:
        return self.sent - self.delivered


def sequential_stepper(cells: list[SimDomain]) -> CellStepper:
    """The in-process oracle backend: run every cell, in ring order."""

    def step(
        bounds: dict[str, float],
        deliveries: dict[str, list[tuple[ShardMessage, float]]],
    ) -> dict[str, CellStep]:
        out: dict[str, CellStep] = {}
        for cell in cells:
            inbox = deliveries.get(cell.name)
            if inbox is None and cell.can_skip(bounds[cell.name]):
                out[cell.name] = CellStep(
                    next_action=cell.next_action(), outbox=[], events=0
                )
                continue
            for message, at in inbox or ():
                cell.deliver(message, at)
            events = cell.run_segment(bounds[cell.name])
            out[cell.name] = CellStep(
                next_action=cell.next_action(),
                outbox=cell.drain_outbox(),
                events=events,
            )
        return out

    return step


class ConservativeEngine:
    """The round loop: alternate cell and host segments under safe horizons.

    Per round:

    1. deliver the host's previous sends into their cells at
       ``send + to_cell``;
    2. run every cell to its own safe bound —
       ``min(host_na, min_{j != i}(na_j + to_host)) + to_cell``, where
       ``na_j`` folds in any delivery times from step 1 (a delivered
       message can wake an idle cell early) — each cell also stopping at
       its own first-send cutoff;
    3. route the cells' merged, canonically-ordered sends into the host at
       ``send + to_host``;
    4. run the host to ``min(cell next actions) + to_host`` (free-run when
       every cell is inert), again with the first-send cutoff;
    5. log the window, check progress, repeat until no domain can act and
       nothing is in flight.

    Every horizon is a function of global domain state only — never of the
    shard grouping — so the round sequence, and therefore every schedule,
    is identical at any ``--shards`` value on any backend.
    """

    def __init__(
        self,
        host: "HostLike",
        cell_names: list[str],
        stepper: CellStepper,
        to_cell: float,
        to_host: float,
        max_rounds: int = 50_000_000,
    ):
        if to_cell <= 0 or to_host <= 0:
            raise ValueError("lookahead must be positive in both directions")
        self.host = host
        self.cell_names = list(cell_names)
        self.stepper = stepper
        self.to_cell = to_cell
        self.to_host = to_host
        self.max_rounds = max_rounds
        self.stats = EngineStats(gvt=0.0)
        self._cell_next: dict[str, float] = {name: _INF for name in cell_names}
        self._cell_rank = {name: i for i, name in enumerate(self.cell_names)}

    def prime(self, cell_next: dict[str, float]) -> None:
        """Seed the per-cell next-action view (post staging/arming)."""
        self._cell_next.update(cell_next)

    def run(self) -> EngineStats:
        host = self.host
        stats = self.stats
        pending: list[ShardMessage] = []  # host -> cells, undelivered
        while True:
            if stats.rounds >= self.max_rounds:
                raise SimulationError(
                    f"shard engine exceeded {self.max_rounds} rounds"
                )
            host_na = host.next_action()
            cells_inert = all(t == _INF for t in self._cell_next.values())
            if host_na == _INF and cells_inert and not pending:
                break

            # -- cell phase ------------------------------------------------
            deliveries: dict[str, list[tuple[ShardMessage, float]]] = {}
            for message in pending:
                at = message.send_time + self.to_cell
                deliveries.setdefault(message.dst, []).append((message, at))
                stats.delivered += 1
            pending = []
            # Effective next actions: a delivery can wake an idle cell.
            na_eff = dict(self._cell_next)
            for name, pairs in deliveries.items():
                earliest = min(at for _message, at in pairs)
                if earliest < na_eff[name]:
                    na_eff[name] = earliest
            # Two smallest effective next actions -> min-excluding-self.
            low_name, low, second = None, _INF, _INF
            for name, value in na_eff.items():
                if value < low:
                    low_name, low, second = name, value, low
                elif value < second:
                    second = value
            bounds: dict[str, float] = {}
            for name in self.cell_names:
                others = second if name == low_name else low
                wake = host_na if host_na < others + self.to_host else others + self.to_host
                bounds[name] = wake + self.to_cell  # inf stays inf
            steps = self.stepper(bounds, deliveries)
            inbound: list[ShardMessage] = []
            for name in self.cell_names:
                step = steps[name]
                self._cell_next[name] = step.next_action
                stats.cell_events += step.events
                stats.sent += len(step.outbox)
                inbound.extend(step.outbox)
            inbound.sort(
                key=lambda m: (m.send_time, self._cell_rank[m.src], m.seq)
            )
            for message in inbound:
                host.deliver(message, message.send_time + self.to_host)
                stats.delivered += 1

            # -- host phase ------------------------------------------------
            cell_min = min(self._cell_next.values(), default=_INF)
            host_bound = _INF if cell_min == _INF else cell_min + self.to_host
            host_events = host.run_segment(host_bound)
            stats.host_events += host_events
            pending = host.drain_outbox()
            stats.sent += len(pending)

            # -- window log + progress guard -------------------------------
            gvt = min(
                host.next_action(),
                min(self._cell_next.values(), default=_INF),
                min(
                    (m.send_time + self.to_cell for m in pending),
                    default=_INF,
                ),
            )
            if gvt != _INF:
                if gvt < stats.gvt:
                    raise SimulationError(
                        f"GVT moved backwards: {stats.gvt} -> {gvt}"
                    )
                stats.gvt = gvt
            stats.windows.append(
                (stats.gvt, min(bounds.values(), default=_INF), host_bound)
            )
            progressed = (
                host_events
                or any(steps[name].events for name in self.cell_names)
                or inbound
                or pending
                or deliveries
            )
            stats.rounds += 1
            if not progressed:
                raise SimulationError(
                    "shard engine deadlock: a full round made no progress "
                    f"(round {stats.rounds}, gvt {stats.gvt})"
                )
        if stats.in_flight != 0:
            raise SimulationError(
                f"message conservation violated: sent={stats.sent} "
                f"delivered={stats.delivered}"
            )
        return stats
