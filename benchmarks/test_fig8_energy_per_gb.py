"""Fig. 8 — energy consumption per gigabyte of data (J/GB).

The paper's headline result: CompStor consumes less energy per GB than the
Xeon server for all six applications, with "up to 3X energy saving".

Attribution model (see repro.analysis.calibration): Xeon runs are charged
whole-server wall power; CompStor runs are charged device-only power, which
is what makes the paper's numbers independent of the device count.
"""

from repro.analysis.experiments import format_series_table
from repro.analysis.figures import run_fig8


def test_fig8_energy_per_gb(benchmark):
    rows = benchmark.pedantic(run_fig8, rounds=1, iterations=1)

    print("\n" + format_series_table(
        "Fig. 8 — energy per GB (J/GB), measured vs paper",
        ["app", "CompStor", "paper", "Xeon", "paper", "ratio", "paper ratio"],
        [[r.app, r.compstor_j_per_gb, r.paper_compstor, r.xeon_j_per_gb,
          r.paper_xeon, r.ratio, r.paper_ratio] for r in rows],
    ))

    assert len(rows) == 6
    for r in rows:
        # direction: CompStor wins on energy for every app
        assert r.compstor_j_per_gb < r.xeon_j_per_gb, f"{r.app}: CompStor lost"
        # absolute values within 40% of the paper's bars
        assert abs(r.compstor_j_per_gb - r.paper_compstor) / r.paper_compstor < 0.40, r.app
        assert abs(r.xeon_j_per_gb - r.paper_xeon) / r.paper_xeon < 0.40, r.app
        # per-app savings ratio within 40% of the paper's
        assert abs(r.ratio - r.paper_ratio) / r.paper_ratio < 0.40, r.app

    # "up to 3X energy saving for some applications"
    best = max(r.ratio for r in rows)
    assert best >= 2.8
    # and the biggest winners are the IO-bound searches + gunzip, as published
    ranked = sorted(rows, key=lambda r: r.ratio, reverse=True)
    assert {ranked[0].app, ranked[1].app, ranked[2].app} == {"grep", "gawk", "gunzip"}
