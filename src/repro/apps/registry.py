"""The default installed-application set.

Both the host OS image and every CompStor's embedded Linux boot with these
preinstalled; anything else arrives via dynamic task loading (ISC_LOAD).
"""

from __future__ import annotations

from repro.apps.compress import Bunzip2App, Bzip2App, GunzipApp, GzipApp
from repro.apps.moretext import HeadApp, SortApp, TailApp, UniqApp
from repro.apps.query import SelectQueryApp
from repro.apps.search import FilterApp, GawkApp, GrepApp
from repro.apps.textutils import CatApp, EchoApp, LsApp, Sha1SumApp, WcApp
from repro.isos.loader import ExecutableRegistry

__all__ = ["default_registry"]


def default_registry() -> ExecutableRegistry:
    """A fresh registry with the standard application set installed."""
    apps = [
        GzipApp(),
        GunzipApp(),
        Bzip2App(),
        Bunzip2App(),
        GrepApp(),
        GawkApp(),
        FilterApp(),
        CatApp(),
        EchoApp(),
        LsApp(),
        WcApp(),
        Sha1SumApp(),
        HeadApp(),
        TailApp(),
        UniqApp(),
        SortApp(),
        SelectQueryApp(),
    ]
    return ExecutableRegistry({app.name: app for app in apps})
