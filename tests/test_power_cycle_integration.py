"""Full-stack power-cycle: filesystem + object store survive via FTL SPOR.

The chain under test: files written through the in-storage filesystem land
on NAND with OOB stamps; after a power cut the FTL rebuilds its map from
the media, the filesystem reloads its metadata region, and the object store
reloads its index — everything a real drive must reassemble at boot.
"""

import pytest

from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer, FtlConfig
from repro.isos import ExtentFileSystem, FlashAccessDevice
from repro.objstore import ObjectStore
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=2, planes_per_die=1, blocks_per_plane=8,
    pages_per_block=8, page_size=2048,
)
CONFIG = FtlConfig(op_ratio=0.25)


def build_stack(sim, flash, name="ftl"):
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=2048)),
                    name=f"{name}.ecc")
    ftl = FlashTranslationLayer(sim, flash, ecc, config=CONFIG, name=name)
    fs = ExtentFileSystem(sim, FlashAccessDevice(sim, ftl))
    return ftl, fs


def drive(sim, gen):
    return sim.run(sim.process(gen))


def test_filesystem_survives_power_cycle():
    sim = Simulator(seed=13)
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9))
    ftl, fs = build_stack(sim, flash)

    def first_life():
        yield from fs.write_file("book.txt", b"chapter one " * 500)
        yield from fs.write_file("notes.md", b"remember the fox\n")
        yield from fs.persist()  # also flushes

    drive(sim, first_life())

    # --- power cut: all DRAM state gone, media survives ---
    ftl2, _ = build_stack(sim, flash, name="ftl2")
    drive(sim, ftl2.recover_from_flash())
    fs2 = ExtentFileSystem(sim, FlashAccessDevice(sim, ftl2))
    drive(sim, fs2.load())

    assert fs2.listdir() == ["book.txt", "notes.md"]
    assert drive(sim, fs2.read_file("notes.md")) == b"remember the fox\n"
    assert drive(sim, fs2.read_file("book.txt")) == b"chapter one " * 500


def test_object_store_survives_power_cycle():
    sim = Simulator(seed=14)
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9))
    ftl, fs = build_stack(sim, flash)
    store = ObjectStore(fs)

    def first_life():
        yield from store.put("alpha", b"object one", tags={"k": "v"})
        yield from store.put("beta", b"object two")
        yield from store.put("alpha", b"object one v2", tags={"k": "v"})  # bump
        yield from store.persist()
        yield from fs.persist()

    drive(sim, first_life())

    ftl2, _ = build_stack(sim, flash, name="ftl2")
    drive(sim, ftl2.recover_from_flash())
    fs2 = ExtentFileSystem(sim, FlashAccessDevice(sim, ftl2))
    drive(sim, fs2.load())
    store2 = ObjectStore(fs2)
    drive(sim, store2.load())

    assert store2.get_key_range() == ["alpha", "beta"]
    assert store2.head("alpha").version == 2

    def get(key):
        return (yield from store2.get(key))

    data, meta = drive(sim, get("alpha"))
    assert data == b"object one v2"
    assert meta.tags == {"k": "v"}


def test_unpersisted_fs_metadata_is_lost_but_recoverable_data_remains():
    """Without fs.persist() the namespace is gone even though page data
    survived — exactly the contract of metadata journaling."""
    sim = Simulator(seed=15)
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9))
    ftl, fs = build_stack(sim, flash)

    def first_life():
        yield from fs.write_file("orphan.txt", b"data without metadata")
        yield from ftl.flush()  # data durable, metadata not persisted

    drive(sim, first_life())

    ftl2, _ = build_stack(sim, flash, name="ftl2")
    mapped = drive(sim, ftl2.recover_from_flash())
    assert mapped > 0  # the logical pages are all still there
    fs2 = ExtentFileSystem(sim, FlashAccessDevice(sim, ftl2))
    drive(sim, fs2.load())
    assert fs2.listdir() == []  # ...but the namespace never made it to media
