"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Event, Interrupt, SimulationError, Simulator


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        return sim.now

    p = sim.process(proc())
    assert sim.run(p) == 5.0
    assert sim.now == 5.0


def test_zero_delay_timeout_runs_same_timestamp():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(0.0)
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen == [0.0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return 42

    def parent():
        value = yield sim.process(child())
        return value * 2

    assert sim.run(sim.process(parent())) == 84


def test_events_fire_in_fifo_order_at_same_time():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abcde":
        sim.process(proc(tag))
    sim.run()
    assert order == list("abcde")


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def proc():
        while True:
            yield sim.timeout(3.0)

    sim.process(proc())
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_past_time_raises():
    sim = Simulator()
    sim.process(iter_timeout(sim, 5.0))
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def iter_timeout(sim, t):
    yield sim.timeout(t)


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    def firer():
        yield sim.timeout(2.0)
        ev.succeed("payload")

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert got == ["payload"]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def firer():
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_escapes_run():
    sim = Simulator()
    ev = sim.event()

    def firer():
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("nobody caught me"))

    sim.process(firer())
    with pytest.raises(RuntimeError, match="nobody caught me"):
        sim.run()


def test_process_exception_propagates_to_parent():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child died")

    def parent():
        with pytest.raises(ValueError, match="child died"):
            yield sim.process(child())
        return "handled"

    assert sim.run(sim.process(parent())) == "handled"


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")

    def late_waiter():
        yield sim.timeout(4.0)
        value = yield ev  # already processed by now
        return (sim.now, value)

    assert sim.run(sim.process(late_waiter())) == (4.0, "early")


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def worker(d):
        yield sim.timeout(d)
        return d

    def parent():
        procs = [sim.process(worker(d)) for d in (3.0, 1.0, 2.0)]
        results = yield sim.all_of(procs)
        return (sim.now, sorted(results.values()))

    assert sim.run(sim.process(parent())) == (3.0, [1.0, 2.0, 3.0])


def test_any_of_fires_on_first():
    sim = Simulator()

    def worker(d):
        yield sim.timeout(d)
        return d

    def parent():
        procs = [sim.process(worker(d)) for d in (3.0, 1.0, 2.0)]
        results = yield sim.any_of(procs)
        return (sim.now, list(results.values()))

    now, values = sim.run(sim.process(parent()))
    assert now == 1.0
    assert values == [1.0]
    sim.run()  # drain remaining workers


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def parent():
        result = yield sim.all_of([])
        return result

    assert sim.run(sim.process(parent())) == {}


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def attacker(target):
        yield sim.timeout(2.0)
        target.interrupt("preempted")

    v = sim.process(victim())
    sim.process(attacker(v))
    sim.run()
    assert log == [(2.0, "preempted")]


def test_interrupted_process_can_rewait():
    sim = Simulator()

    def victim():
        deadline = sim.timeout(10.0)
        try:
            yield deadline
        except Interrupt:
            yield deadline  # resume waiting on the same timeout
        return sim.now

    def attacker(target):
        yield sim.timeout(3.0)
        target.interrupt()

    v = sim.process(victim())
    sim.process(attacker(v))
    assert sim.run(v) == 10.0


def test_interrupt_terminated_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_self_interrupt_rejected():
    sim = Simulator()

    def selfish():
        me = sim.active_process
        with pytest.raises(SimulationError):
            me.interrupt()
        yield sim.timeout(1.0)

    sim.run(sim.process(selfish()))


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    p = sim.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        sim.run(p)


def test_rng_streams_deterministic_and_independent():
    a = Simulator(seed=7)
    b = Simulator(seed=7)
    c = Simulator(seed=8)
    assert a.rng("flash").random() == b.rng("flash").random()
    assert a.rng("flash").random() != a.rng("pcie").random()
    assert b.rng("flash").random() != c.rng("flash").random()  # seed matters


def test_peek_and_step():
    sim = Simulator()
    sim.timeout(2.5)
    assert sim.peek() == 2.5
    sim.step()
    assert sim.now == 2.5
    assert sim.peek() == float("inf")
    with pytest.raises(SimulationError):
        sim.step()


def test_run_until_event_never_firing_raises():
    sim = Simulator()
    orphan = sim.event()

    def proc():
        yield sim.timeout(1.0)

    sim.process(proc())
    with pytest.raises(SimulationError, match="drained"):
        sim.run(orphan)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_daemon_timeout_does_not_keep_run_alive():
    sim = Simulator()
    fired = []

    def housekeeper():
        while True:
            yield sim.timeout(10.0, daemon=True)
            fired.append(sim.now)

    def worker():
        yield sim.timeout(3.0)

    sim.process(housekeeper())
    sim.process(worker())
    sim.run()  # must terminate even though the housekeeper loops forever
    assert sim.now == 3.0
    assert fired == []


def test_daemon_timeout_processed_within_bounded_run():
    sim = Simulator()
    fired = []

    def housekeeper():
        while True:
            yield sim.timeout(10.0, daemon=True)
            fired.append(sim.now)

    sim.process(housekeeper())
    sim.run(until=35.0)
    assert fired == [10.0, 20.0, 30.0]
    assert sim.now == 35.0


def test_daemon_work_counts_as_live_once_started():
    """Work spawned *by* a daemon tick is live and completes."""
    sim = Simulator()
    done = []

    def housekeeper():
        yield sim.timeout(5.0, daemon=True)
        yield sim.timeout(1.0)  # live follow-up work
        done.append(sim.now)

    sim.process(housekeeper())
    sim.run(until=5.0)  # wake the daemon exactly at its tick
    sim.run()  # live follow-up keeps running to completion
    assert done == [6.0]


def test_live_events_counter():
    sim = Simulator()
    assert sim.live_events == 0
    sim.timeout(1.0)
    sim.timeout(2.0, daemon=True)
    assert sim.live_events == 1
    sim.run()
    assert sim.live_events == 0


def test_run_until_event_with_only_daemons_raises():
    sim = Simulator()
    orphan = sim.event()

    def housekeeper():
        while True:
            yield sim.timeout(1.0, daemon=True)

    sim.process(housekeeper())
    with pytest.raises(SimulationError, match="drained"):
        sim.run(orphan)


def test_any_of_failure_propagates():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("first failure wins")

    def slow():
        yield sim.timeout(5.0)

    def parent():
        with pytest.raises(ValueError, match="first failure"):
            yield sim.any_of([sim.process(bad()), sim.process(slow())])
        return "survived"

    assert sim.run(sim.process(parent())) == "survived"
    sim.run()  # drain the slow worker


def test_all_of_failure_propagates():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("part failed")

    def good():
        yield sim.timeout(0.5)
        return "ok"

    def parent():
        with pytest.raises(RuntimeError, match="part failed"):
            yield sim.all_of([sim.process(good()), sim.process(bad())])
        return "survived"

    assert sim.run(sim.process(parent())) == "survived"


def test_all_of_with_pretriggered_events():
    sim = Simulator()
    done = sim.event()
    done.succeed("already")

    def parent():
        pending = sim.timeout(2.0, value="later")
        results = yield sim.all_of([done, pending])
        return sorted(str(v) for v in results.values())

    assert sim.run(sim.process(parent())) == ["already", "later"]


def test_any_of_late_failure_after_winner_is_defused():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)
        return "winner"

    def late_crash():
        yield sim.timeout(2.0)
        raise RuntimeError("too late to matter")

    def parent():
        crasher = sim.process(late_crash())
        result = yield sim.any_of([sim.process(quick()), crasher])
        assert "winner" in list(result.values())
        # the late crasher must not blow up the drain below
        try:
            yield crasher
        except RuntimeError:
            pass
        return "done"

    assert sim.run(sim.process(parent())) == "done"
