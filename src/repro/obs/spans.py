"""Span-based tracing layered on :class:`repro.sim.trace.Tracer`.

The seed tracer records disconnected events; this module links them into
**causal span trees**.  A :class:`Span` emits ``span.start`` / ``span.event``
/ ``span.end`` trace records carrying a :class:`SpanContext` (trace id, span
id, parent id), so a minion's life — client -> NVMe -> agent -> exec ->
flash driver -> response, the paper's Table III — reconstructs as one tree
instead of a flat log.

Identifiers are allocated from a per-:class:`Tracer` sequence, so two runs
with fresh tracers produce byte-identical traces (the kernel's determinism
guarantee extends to spans).

Records that components emit without span plumbing (``flash.read``,
``minion.tracked``, ...) can be *adopted* into a finished tree by time
window + component prefix (:func:`adopt_records`): exact for one in-flight
minion, best-effort under concurrency — which is precisely the Table III
replay use case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Span",
    "SpanContext",
    "SpanNode",
    "adopt_records",
    "build_span_trees",
    "format_span_tree",
    "start_trace",
    "continue_trace",
]


@dataclass(frozen=True, slots=True)
class SpanContext:
    """Propagatable identity of a span (what travels inside a minion)."""

    trace_id: int
    span_id: int
    parent_id: int | None = None


def _next_id(tracer: Tracer) -> int:
    # Per-tracer sequence => deterministic ids for a fresh (seed, model) run.
    seq = getattr(tracer, "_span_seq", 0) + 1
    tracer._span_seq = seq
    return seq


class Span:
    """A live span: emits start/end/event records into the tracer."""

    __slots__ = ("tracer", "sim", "name", "component", "context", "started_at", "ended_at")

    def __init__(
        self,
        tracer: Tracer,
        sim,
        name: str,
        component: str,
        context: SpanContext,
    ):
        self.tracer = tracer
        self.sim = sim
        self.name = name
        self.component = component
        self.context = context
        self.started_at = sim.now
        self.ended_at: float | None = None
        tracer.emit(
            sim.now, component, "span.start",
            trace=context.trace_id, span=context.span_id,
            parent=context.parent_id, name=name,
        )

    def child(self, name: str, component: str | None = None) -> "Span":
        ctx = SpanContext(
            trace_id=self.context.trace_id,
            span_id=_next_id(self.tracer),
            parent_id=self.context.span_id,
        )
        return Span(self.tracer, self.sim, name, component or self.component, ctx)

    def event(self, name: str, **detail: Any) -> None:
        self.tracer.emit(
            self.sim.now, self.component, "span.event",
            trace=self.context.trace_id, span=self.context.span_id,
            name=name, **detail,
        )

    def end(self, **detail: Any) -> None:
        if self.ended_at is not None:
            return
        self.ended_at = self.sim.now
        self.tracer.emit(
            self.sim.now, self.component, "span.end",
            trace=self.context.trace_id, span=self.context.span_id,
            name=self.name, duration=self.ended_at - self.started_at, **detail,
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.end()


def start_trace(tracer: Tracer, sim, name: str, component: str) -> Span:
    """Open a root span (a new trace)."""
    trace_id = _next_id(tracer)
    ctx = SpanContext(trace_id=trace_id, span_id=_next_id(tracer), parent_id=None)
    return Span(tracer, sim, name, component, ctx)


def continue_trace(
    tracer: Tracer, sim, name: str, component: str, parent: SpanContext
) -> Span:
    """Open a child span under a propagated :class:`SpanContext`."""
    ctx = SpanContext(
        trace_id=parent.trace_id, span_id=_next_id(tracer), parent_id=parent.span_id
    )
    return Span(tracer, sim, name, component, ctx)


# ---------------------------------------------------------------------------
# Reconstruction
# ---------------------------------------------------------------------------

@dataclass
class SpanNode:
    """One reconstructed span: tree node + its in-window events.

    Events are ``(time, name, detail, seq)`` where ``seq`` is the record's
    position in the source trace — the causal tiebreak for events that share
    a simulation timestamp (discrete-event models produce many such ties).
    """

    name: str
    component: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    events: list[tuple[float, str, dict, int]] = field(default_factory=list)
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def event_sequence(self) -> list[tuple[float, str]]:
        """Every event in the tree, sorted by (time, emission order)."""
        decorated = [
            (t, seq, name) for node in self.walk() for t, name, _, seq in node.events
        ]
        decorated.sort()
        return [(t, name) for t, _, name in decorated]

    def find(self, name: str) -> "SpanNode | None":
        for node in self.walk():
            if node.name == name:
                return node
        return None


def build_span_trees(source: Tracer | Iterable[TraceRecord]) -> dict[int, SpanNode]:
    """``trace_id -> root SpanNode`` from span.* records.

    Orphan spans (parent never seen — e.g. evicted from a bounded tracer)
    are promoted to roots of their trace; the first-started root wins the
    trace's slot and later roots attach under it as children so no data is
    silently lost.
    """
    records = source.records if isinstance(source, Tracer) else source
    nodes: dict[int, SpanNode] = {}
    trace_of: dict[int, int] = {}
    for seq, rec in enumerate(records):
        if rec.kind == "span.start":
            d = rec.detail
            nodes[d["span"]] = SpanNode(
                name=d["name"], component=rec.component,
                span_id=d["span"], parent_id=d.get("parent"), start=rec.time,
            )
            trace_of[d["span"]] = d["trace"]
        elif rec.kind == "span.end":
            node = nodes.get(rec.detail["span"])
            if node is not None:
                node.end = rec.time
        elif rec.kind == "span.event":
            node = nodes.get(rec.detail["span"])
            if node is not None:
                detail = {
                    k: v for k, v in rec.detail.items()
                    if k not in ("trace", "span", "name")
                }
                node.events.append((rec.time, rec.detail["name"], detail, seq))
    roots: dict[int, SpanNode] = {}
    for span_id, node in nodes.items():
        parent = nodes.get(node.parent_id) if node.parent_id is not None else None
        if parent is not None:
            parent.children.append(node)
            continue
        trace_id = trace_of[span_id]
        if trace_id in roots:
            roots[trace_id].children.append(node)
        else:
            roots[trace_id] = node
    for node in nodes.values():
        node.children.sort(key=lambda child: (child.start, child.span_id))
    return roots


def adopt_records(
    root: SpanNode,
    source: Tracer | Iterable[TraceRecord],
    kinds: tuple[str, ...],
    component_prefix: str = "",
) -> int:
    """Fold non-span trace records into a finished tree as events.

    Each matching record becomes an event on the **deepest** span whose
    ``[start, end]`` window contains its timestamp.  Returns the number of
    records adopted.  Exact when one minion is in flight (the Table III
    replay); under concurrency, same-device records are attributed to
    whichever span window contains them.
    """
    records = source.records if isinstance(source, Tracer) else source
    adopted = 0
    for seq, rec in enumerate(records):
        if rec.kind not in kinds:
            continue
        if component_prefix and not rec.component.startswith(component_prefix):
            continue
        best: SpanNode | None = None
        best_depth = -1
        stack: list[tuple[SpanNode, int]] = [(root, 0)]
        while stack:
            node, depth = stack.pop()
            end = node.end if node.end is not None else float("inf")
            if node.start <= rec.time <= end:
                if depth > best_depth:
                    best, best_depth = node, depth
                stack.extend((child, depth + 1) for child in node.children)
        if best is not None:
            # seq is the record's index in the same source trace, so adopted
            # events interleave correctly with native span events
            best.events.append((rec.time, rec.kind, dict(rec.detail), seq))
            adopted += 1
    for node in root.walk():
        node.events.sort(key=lambda item: (item[0], item[3]))
    return adopted


def format_span_tree(root: SpanNode, time_unit: float = 1e3, unit: str = "ms") -> str:
    """ASCII rendering of a span tree, events inlined in time order."""
    lines: list[str] = []

    def emit(node: SpanNode, indent: int) -> None:
        pad = "  " * indent
        duration = node.duration
        span_when = f"[{node.start * time_unit:.3f} {unit}"
        span_when += f" +{duration * time_unit:.3f} {unit}]" if duration is not None else " ...]"
        lines.append(f"{pad}{node.name} ({node.component}) {span_when}")
        # interleave events and children by (time, emission order)
        items: list[tuple[float, int, int, object]] = []
        for event in node.events:
            items.append((event[0], 0, event[3], event))
        for child in node.children:
            items.append((child.start, 1, 0, child))
        for _, tag, _, item in sorted(items, key=lambda x: (x[0], x[1], x[2])):
            if tag == 0:
                t, name, detail, _ = item  # type: ignore[misc]
                extras = "".join(
                    f" {k}={v}" for k, v in sorted(detail.items()) if k != "duration"
                )
                lines.append(f"{pad}  * {t * time_unit:.3f} {unit} {name}{extras}")
            else:
                emit(item, indent + 1)  # type: ignore[arg-type]

    emit(root, 0)
    return "\n".join(lines)
