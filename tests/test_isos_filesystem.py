"""Unit tests for the extent filesystem and block devices."""

import pytest

from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer
from repro.isos import ExtentFileSystem, FlashAccessDevice, FsError
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=2, planes_per_die=1, blocks_per_plane=8, pages_per_block=8,
    page_size=2048,
)


def make_fs(sim=None, store_data=True):
    sim = sim or Simulator()
    flash = FlashArray(
        sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9), store_data=store_data
    )
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=2048)))
    ftl = FlashTranslationLayer(sim, flash, ecc)
    device = FlashAccessDevice(sim, ftl)
    return sim, ExtentFileSystem(sim, device)


def drive(sim, gen):
    return sim.run(sim.process(gen))


def test_write_read_roundtrip_small():
    sim, fs = make_fs()
    drive(sim, fs.write_file("hello.txt", b"hello filesystem"))
    assert drive(sim, fs.read_file("hello.txt")) == b"hello filesystem"


def test_write_read_multi_page():
    sim, fs = make_fs()
    data = bytes(range(256)) * 40  # 10240 B > 5 pages
    drive(sim, fs.write_file("big.bin", data))
    assert fs.page_count("big.bin") == 5
    assert drive(sim, fs.read_file("big.bin")) == data


def test_stat_and_listdir():
    sim, fs = make_fs()
    drive(sim, fs.write_file("b.txt", b"bb"))
    drive(sim, fs.write_file("a.txt", b"a"))
    assert fs.listdir() == ["a.txt", "b.txt"]
    assert fs.stat("a.txt").size == 1
    assert fs.exists("b.txt")
    assert not fs.exists("c.txt")


def test_missing_file_raises():
    sim, fs = make_fs()
    with pytest.raises(FsError, match="no such file"):
        fs.stat("ghost")
    with pytest.raises(FsError, match="no such file"):
        drive(sim, fs.read_file("ghost"))
    with pytest.raises(FsError):
        drive(sim, fs.delete("ghost"))


def test_invalid_names_rejected():
    sim, fs = make_fs()
    for bad in ("", "a/b", "nul\x00"):
        with pytest.raises(FsError, match="invalid file name"):
            drive(sim, fs.write_file(bad, b"x"))


def test_overwrite_replaces_and_frees():
    sim, fs = make_fs()
    drive(sim, fs.write_file("f", b"x" * 3 * GEO.page_size))
    before = fs.free_pages
    drive(sim, fs.write_file("f", b"y"))
    assert drive(sim, fs.read_file("f")) == b"y"
    assert fs.free_pages == before + 2  # shrank from 3 pages to 1


def test_delete_frees_pages():
    sim, fs = make_fs()
    before = fs.free_pages
    drive(sim, fs.write_file("f", b"z" * GEO.page_size * 2))
    drive(sim, fs.delete("f"))
    assert fs.free_pages == before
    assert not fs.exists("f")


def test_append_grows_file():
    sim, fs = make_fs()
    drive(sim, fs.write_file("log", b"A" * GEO.page_size))
    drive(sim, fs.append("log", b"B" * GEO.page_size))
    assert fs.stat("log").size == 2 * GEO.page_size
    data = drive(sim, fs.read_file("log"))
    assert data == b"A" * GEO.page_size + b"B" * GEO.page_size


def test_no_space_error():
    sim, fs = make_fs()
    too_big = (fs.free_pages + 1) * GEO.page_size
    with pytest.raises(FsError, match="no space"):
        drive(sim, fs.write_file("huge", None, size=too_big))


def test_analytic_mode_tracks_sizes_without_data():
    sim, fs = make_fs(store_data=False)
    drive(sim, fs.write_file("ghostly", None, size=3 * GEO.page_size + 7))
    assert fs.stat("ghostly").size == 3 * GEO.page_size + 7
    assert fs.page_count("ghostly") == 4
    assert drive(sim, fs.read_file("ghostly")) is None


def test_read_page_of_returns_chunks_with_valid_len():
    sim, fs = make_fs()
    data = b"Q" * (GEO.page_size + 100)
    drive(sim, fs.write_file("f", data))
    chunk0, len0 = drive(sim, fs.read_page_of("f", 0))
    chunk1, len1 = drive(sim, fs.read_page_of("f", 1))
    assert (len0, len1) == (GEO.page_size, 100)
    assert chunk0 == b"Q" * GEO.page_size
    assert chunk1 == b"Q" * 100
    with pytest.raises(FsError, match="out of range"):
        drive(sim, fs.read_page_of("f", 2))


def test_stream_file_covers_whole_content():
    sim, fs = make_fs()
    data = b"streamed" * 1000
    drive(sim, fs.write_file("s", data))
    chunks = drive(sim, fs.stream_file("s"))
    assert b"".join(c for c, _ in chunks) == data
    assert sum(n for _, n in chunks) == len(data)


def test_persist_and_load_roundtrip():
    sim, fs = make_fs()
    drive(sim, fs.write_file("keep.txt", b"persistent data"))
    drive(sim, fs.persist())
    # simulate a reboot: fresh FS object over the same device
    reborn = ExtentFileSystem(sim, fs.device)
    drive(sim, reborn.load())
    assert reborn.listdir() == ["keep.txt"]
    assert drive(sim, reborn.read_file("keep.txt")) == b"persistent data"
    # freed-page accounting survives
    assert reborn.free_pages == fs.free_pages


def test_import_files_bulk():
    sim, fs = make_fs()
    items = [(f"book{i}.txt", f"contents {i}".encode(), 0) for i in range(5)]
    items = [(n, d, len(d)) for n, d, _ in items]
    drive(sim, fs.import_files(items))
    assert len(fs.listdir()) == 5


def test_meta_pages_validation():
    sim, fs = make_fs()
    with pytest.raises(ValueError):
        ExtentFileSystem(sim, fs.device, meta_pages=0)
