"""Shell command parsing.

CompStor accepts "Linux shell commands/scripts" as off-loadable work.  The
model supports:

- single commands: ``grep -c pattern books.txt``
- pipelines: ``gunzip file.gz | grep pattern`` (stage N's stdout feeds
  stage N+1's stdin);
- scripts: newline-/semicolon-separated command sequences.

Parsing uses POSIX quoting rules via :mod:`shlex`.
"""

from __future__ import annotations

import shlex

__all__ = ["ShellError", "parse_command_line", "split_pipeline", "split_script"]


class ShellError(Exception):
    """Malformed command line."""


def parse_command_line(line: str) -> list[str]:
    """Tokenise one command into argv (POSIX quoting)."""
    try:
        argv = shlex.split(line, posix=True)
    except ValueError as exc:
        raise ShellError(f"cannot parse {line!r}: {exc}") from exc
    if not argv:
        raise ShellError("empty command")
    return argv


def split_pipeline(line: str) -> list[list[str]]:
    """Split on ``|`` (outside quotes) and tokenise each stage."""
    stages: list[str] = []
    current: list[str] = []
    depth_quote: str | None = None
    for ch in line:
        if depth_quote:
            if ch == depth_quote:
                depth_quote = None
            current.append(ch)
        elif ch in "'\"":
            depth_quote = ch
            current.append(ch)
        elif ch == "|":
            stages.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth_quote:
        raise ShellError(f"unterminated quote in {line!r}")
    stages.append("".join(current))
    parsed = [parse_command_line(stage) for stage in stages if stage.strip()]
    if not parsed:
        raise ShellError("empty pipeline")
    return parsed


def split_script(script: str) -> list[str]:
    """Split a script into command lines on newlines and ``;``."""
    lines: list[str] = []
    for raw in script.replace(";", "\n").splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            lines.append(line)
    if not lines:
        raise ShellError("empty script")
    return lines
