"""Discrete-event simulation kernel.

A small, deterministic, coroutine-based DES in the style of SimPy, built
from scratch because this environment has no SimPy.  Every hardware and
software component in the CompStor model is a :class:`Process` (a Python
generator that yields :class:`Event` objects) running inside a
:class:`Simulator`.

Determinism guarantees:

* a single event queue ordered by ``(time, priority, sequence)`` — ties are
  broken by insertion order, never by object identity;
* all randomness flows through named :func:`Simulator.rng` streams seeded
  from the simulator seed, so a run is reproducible from ``(seed, model)``.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import (
    Container,
    PreemptionError,
    PriorityResource,
    Resource,
    Store,
)
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "Interrupt",
    "PreemptionError",
    "PriorityResource",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
