"""Fault-surface hooks installed into device components.

The hardware boundaries the paper draws — NVMe front-end, ISPS agent,
whole-device — each get one small mutable state object that the component
consults on its hot path.  The contract mirrors ``repro.obs``: components
are constructed with ``self.faults = None`` and pay exactly one attribute
test per command when no injector ever touched them, so a fault-free run's
schedule is bit-identical to a build without the subsystem.

This module deliberately imports nothing from the rest of the model (the
NVMe controller and the ISPS agent import *it*), so the dependency arrow
points from hardware to fault plumbing, never back.
"""

from __future__ import annotations

from typing import Any

__all__ = ["AgentFaultState", "AgentUnavailable", "DeviceFaultState"]

#: Interrupt causes carrying this prefix mark infrastructure kills (agent or
#: device death), as opposed to the watchdog's policy kill.
FAULT_CAUSE_PREFIX = "fault."


class AgentUnavailable(Exception):
    """The ISPS agent daemon is down (crashed, not yet restarted).

    Raised out of the agent's ISC dispatch; the NVMe controller converts it
    into a retryable ``ISC_AGENT_DOWN`` completion status.
    """


class DeviceFaultState:
    """Injected NVMe-level trouble for one device.

    ``crashed`` refuses every command (the host driver's view of a dead
    drive: immediate aborts).  ``transient_fraction`` fails that share of
    commands with a retryable status, drawn from a dedicated deterministic
    RNG stream so fault draws never perturb media randomness.
    ``limp_factor`` multiplies front-end firmware latency — the "limping"
    device that answers, slowly.
    """

    __slots__ = (
        "crashed",
        "limp_factor",
        "transient_fraction",
        "rng",
        "crashes",
        "recoveries",
        "commands_refused",
        "transients_injected",
    )

    def __init__(self, rng: Any = None):
        self.crashed = False
        self.limp_factor = 1.0
        self.transient_fraction = 0.0
        self.rng = rng
        self.crashes = 0
        self.recoveries = 0
        self.commands_refused = 0
        self.transients_injected = 0

    def intercept(self) -> str | None:
        """Status name to fail the next command with, or None to proceed.

        Called by the controller worker once per fetched command.  Only
        draws randomness while a transient window is open, so closed-window
        operation consumes nothing from the stream.
        """
        if self.crashed:
            self.commands_refused += 1
            return "DEVICE_UNAVAILABLE"
        if self.transient_fraction > 0.0 and self.rng is not None:
            if self.rng.random() < self.transient_fraction:
                self.transients_injected += 1
                return "TRANSIENT"
        return None

    @property
    def degraded(self) -> bool:
        return self.crashed or self.limp_factor > 1.0 or self.transient_fraction > 0.0


class AgentFaultState:
    """Injected ISPS-agent trouble for one device.

    ``down`` makes the agent refuse new minions/queries (the controller
    answers ``ISC_AGENT_DOWN``); the injector's supervisor clears it after
    the restart delay and bumps ``restarts`` — the count telemetry exposes.
    """

    __slots__ = ("down", "crashes", "restarts")

    def __init__(self):
        self.down = False
        self.crashes = 0
        self.restarts = 0
