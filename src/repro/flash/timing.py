"""Flash operation timing.

Latencies follow public enterprise TLC NAND datasheet ranges.  The channel
transfer rate defaults to **533 MB/s**, the figure the paper uses for its
Fig. 1 bandwidth-mismatch analysis (16 ch x 533 MB/s ≈ 8.5 GB/s per SSD).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlashTiming"]

MB = 1_000_000


@dataclass(frozen=True, slots=True)
class FlashTiming:
    """Per-operation latencies (seconds) and channel bus rate (bytes/s).

    Attributes
    ----------
    t_read:
        Array read time tR — cell array to page register.
    t_prog:
        Page program time tPROG.
    t_erase:
        Block erase time tBERS.
    channel_rate:
        ONFI/Toggle bus rate per channel, bytes/second.
    t_cmd:
        Command/address cycle overhead per operation on the bus.
    """

    t_read: float = 60e-6
    t_prog: float = 700e-6
    t_erase: float = 3.5e-3
    channel_rate: float = 533 * MB
    t_cmd: float = 1e-6

    def __post_init__(self) -> None:
        for field in ("t_read", "t_prog", "t_erase", "channel_rate", "t_cmd"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")

    def transfer_time(self, nbytes: int) -> float:
        """Bus occupancy to move ``nbytes`` over one channel."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.t_cmd + nbytes / self.channel_rate

    @classmethod
    def slc_mode(cls) -> "FlashTiming":
        """Fast SLC-mode timings (used for the FTL's write-buffer blocks)."""
        return cls(t_read=25e-6, t_prog=200e-6, t_erase=2.0e-3)

    @classmethod
    def qlc(cls) -> "FlashTiming":
        """Slow high-density QLC timings (capacity-optimised arrays)."""
        return cls(t_read=120e-6, t_prog=2.2e-3, t_erase=8.0e-3)
