"""Unit + property tests for the ECC engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ecc import CodewordLayout, EccConfig, EccEngine, UncorrectableError
from repro.sim import Simulator

PAGE = 16384


def make_engine(sim, **kw):
    return EccEngine(sim, EccConfig(**kw) if kw else None)


def decode(sim, engine, page_size, errors):
    return sim.run(sim.process(engine.decode_page(page_size, errors)))


def test_clean_page_decodes_with_base_latency():
    sim = Simulator()
    engine = make_engine(sim)
    outcome = decode(sim, engine, PAGE, 0)
    assert outcome.corrected_bits == 0
    assert outcome.latency == pytest.approx(engine.config.t_decode)
    assert engine.pages_decoded == 1
    assert engine.uncorrectable == 0


def test_correctable_errors_add_latency():
    sim = Simulator()
    engine = make_engine(sim)
    outcome = decode(sim, engine, PAGE, 8)
    assert outcome.corrected_bits == 8
    expected = engine.config.t_decode + 8 * engine.config.t_per_correction
    assert outcome.latency == pytest.approx(expected)
    assert engine.bits_corrected == 8


def test_overwhelming_errors_uncorrectable():
    sim = Simulator()
    engine = make_engine(sim)
    codewords = engine.config.layout.codewords_per_page(PAGE)
    too_many = codewords * engine.config.capability + codewords  # pigeonhole: some cw > t
    with pytest.raises(UncorrectableError):
        decode(sim, engine, PAGE, too_many)
    assert engine.uncorrectable == 1


def test_codeword_layout_division():
    layout = CodewordLayout(data_bytes=2048)
    assert layout.codewords_per_page(16384) == 8
    with pytest.raises(ValueError):
        layout.codewords_per_page(1000)


def test_codeword_bytes_includes_parity():
    layout = CodewordLayout(data_bytes=2048, parity_bytes=112)
    assert layout.codeword_bytes == 2160


@given(errors=st.integers(min_value=0, max_value=300), codewords=st.integers(1, 16))
def test_spread_conserves_error_count(errors, codewords):
    sim = Simulator(seed=3)
    engine = EccEngine(sim)
    spread = engine.spread_errors(errors, codewords)
    assert spread.sum() == errors
    assert (spread >= 0).all()
    assert len(spread) == codewords


def test_uncorrectable_probability_monotone_in_rber():
    sim = Simulator()
    engine = make_engine(sim)
    low = engine.uncorrectable_probability(PAGE, 1e-6)
    high = engine.uncorrectable_probability(PAGE, 1e-2)
    assert 0.0 <= low < high <= 1.0


def test_uncorrectable_probability_near_zero_when_fresh():
    sim = Simulator()
    engine = make_engine(sim)
    assert engine.uncorrectable_probability(PAGE, 1e-7) < 1e-12


def test_energy_sink_called():
    sim = Simulator()
    charged = []
    engine = EccEngine(sim, energy_sink=lambda name, j: charged.append(j))
    decode(sim, engine, PAGE, 0)
    assert charged == [pytest.approx(engine.config.e_per_byte * PAGE)]


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        EccConfig(capability=-1)
    with pytest.raises(ValueError):
        EccConfig(t_decode=-1.0)
    with pytest.raises(ValueError):
        CodewordLayout(data_bytes=0)


def test_encode_page_charges_time_and_energy():
    sim = Simulator()
    charged = []
    engine = EccEngine(sim, energy_sink=lambda n, j: charged.append(j))
    sim.run(sim.process(engine.encode_page(PAGE)))
    assert sim.now == pytest.approx(engine.config.t_decode / 2)  # t_encode default
    assert engine.pages_encoded == 1
    assert charged == [pytest.approx(engine.config.e_encode_per_byte * PAGE)]


def test_encode_page_validates_layout():
    sim = Simulator()
    engine = make_engine(sim)
    with pytest.raises(ValueError):
        sim.run(sim.process(engine.encode_page(1000)))


def test_encode_config_validation():
    with pytest.raises(ValueError):
        EccConfig(t_encode=-1.0)
