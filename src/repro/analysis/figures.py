"""Experiment runners that regenerate the paper's figures.

Each ``run_figN`` function builds a fresh system, drives the measurement
protocol the paper describes, and returns plain data that the benches
assert on and the examples print.  Workload sizes default to functional-mode
scales that finish in seconds of wall clock; pass a larger
:class:`~repro.workloads.corpus.CorpusSpec` (or ``functional=False``) to
approach paper scale.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Generator, Sequence

from repro.analysis.calibration import PAPER_FIG8_J_PER_GB
from repro.analysis.experiments import linear_fit, throughput_mb_s
from repro.baselines.hostonly import HostOnlyRunner
from repro.cluster.node import StorageNode
from repro.config import ScenarioConfig, scenario_from_dict
from repro.flash import FlashArray
from repro.pcie import PcieFabric
from repro.proto.entities import Command
from repro.sim import Simulator
from repro.workloads import BookCorpus, CorpusSpec

__all__ = [
    "Fig1Row",
    "Fig8Row",
    "fig1_cell",
    "fig6_cell",
    "fig7_host_cell",
    "fig8_cell",
    "run_fig1",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "DEFAULT_FIG6_SPEC",
]

#: Per-device corpus share for the weak-scaling experiments: enough files
#: that every A53 core has parallel work.
DEFAULT_FIG6_SPEC = CorpusSpec(files=8, mean_file_bytes=96 * 1024, size_spread=0.2)


# ---------------------------------------------------------------------------
# Fig. 1 — bandwidth mismatch in high-capacity storage servers
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Fig1Row:
    ssd_count: int
    media_bandwidth_bps: float  # aggregate flash bandwidth of all SSDs
    endpoint_link_bps: float  # one SSD's PCIe link
    host_ingest_bps: float  # the x16 uplink ceiling
    mismatch: float  # media / host ingest


def _fig1_row(count: int) -> Fig1Row:
    sim = Simulator()
    fabric = PcieFabric(sim, endpoints=count)
    media_per_ssd = FlashArray(sim).aggregate_bandwidth
    return Fig1Row(
        ssd_count=count,
        media_bandwidth_bps=count * media_per_ssd,
        endpoint_link_bps=fabric.ports[0].bandwidth,
        host_ingest_bps=fabric.host_ingest_bandwidth,
        mismatch=fabric.mismatch_factor(media_per_ssd),
    )


def run_fig1(ssd_counts: Sequence[int] = (1, 4, 8, 16, 32, 64)) -> list[Fig1Row]:
    """The paper's bandwidth-accounting argument, from the models.

    Per-SSD media bandwidth comes from the default 16-channel x 533 MB/s
    flash array; fabric numbers from the Gen3 x16-uplink / x4-endpoint
    topology (Fig. 2).
    """
    return [_fig1_row(count) for count in ssd_counts]


def fig1_cell(ssd_count: int) -> dict:
    """One Fig. 1 row as a JSON-encodable parallel-runner work item."""
    return asdict(_fig1_row(ssd_count))


# ---------------------------------------------------------------------------
# Fig. 6 — performance scales linearly with the number of CompStors
# ---------------------------------------------------------------------------

def _stage_and_commands(
    node: StorageNode, books, app: str
) -> list[tuple[str, Command]]:
    """Round-robin placement -> (device, command) assignments for ``app``."""
    placement = node.device_books(books)
    assignments = []
    for device, part in placement.items():
        for book in part:
            if app in ("gunzip", "bunzip2"):
                target = book.compressed_name
            else:
                target = book.name
            if app in ("grep", "gawk"):
                line = f"{app} xylophone {target}"
            else:
                line = f"{app} {target}"
            assignments.append((device, Command(command_line=line)))
    return assignments


def _corpus_for(app: str, spec: CorpusSpec, functional: bool):
    """Generate a corpus whose on-device form suits ``app``."""
    if app == "gunzip":
        spec = replace(spec, compressions=("gzip",))
    elif app == "bunzip2":
        spec = replace(spec, compressions=("bzip2",))
    books = BookCorpus(spec).generate(functional=functional)
    return books


def _build_node(
    count: int,
    functional: bool,
    device_capacity: int,
    with_baseline_ssd: bool = False,
    scenario: ScenarioConfig | None = None,
) -> StorageNode:
    """The figure runners' node: from the scenario when given, else legacy.

    Both paths share one construction sequence
    (:func:`repro.config.factory.build_node`); the scenario path simply
    carries the full typed description (FTL/ECC/NVMe/CPU knobs included)
    instead of the three scalars.
    """
    if scenario is None:
        return StorageNode.build(
            devices=count, device_capacity=device_capacity,
            store_data=functional, with_baseline_ssd=with_baseline_ssd,
        )
    from repro.config.factory import build_node

    cell = replace(
        scenario,
        flash=replace(
            scenario.flash,
            capacity_bytes=device_capacity,
            store_data=functional,
        ),
        fleet=replace(
            scenario.fleet,
            devices_per_node=count,
            with_baseline_ssd=with_baseline_ssd,
        ),
    )
    return build_node(cell)


def _input_bytes(books, app: str) -> int:
    if app in ("gunzip", "bunzip2"):
        return sum(b.compressed_size for b in books)
    return sum(b.plain_size for b in books)


def run_fig6(
    app: str = "grep",
    device_counts: Sequence[int] = (1, 2, 4),
    spec: CorpusSpec = DEFAULT_FIG6_SPEC,
    functional: bool = True,
    device_capacity: int = 48 * 1024 * 1024,
    scale_dataset_with_devices: bool = True,
    scenario: ScenarioConfig | None = None,
) -> list[tuple[int, float]]:
    """Throughput (MB/s of input scanned) vs number of CompStors.

    Follows the paper's weak-scaling methodology ("a fixed amount of input
    data per each CompStor"): the file count grows with the device count, so
    per-device work is constant and aggregate throughput scales with N.
    Returns ``[(n_devices, throughput_mb_s), ...]``.

    ``scenario`` supersedes ``spec``/``functional``/``device_capacity`` and
    additionally threads its FTL/ECC/NVMe/CPU sections into construction.
    """
    if scenario is not None:
        spec = scenario.corpus
        functional = scenario.flash.store_data
        device_capacity = scenario.flash.capacity_bytes
    return [
        _fig6_one(
            app, count, spec, functional, device_capacity,
            scale_dataset_with_devices, scenario,
        )
        for count in device_counts
    ]


def _fig6_one(
    app: str,
    count: int,
    spec: CorpusSpec,
    functional: bool,
    device_capacity: int,
    scale_dataset_with_devices: bool,
    scenario: ScenarioConfig | None = None,
) -> tuple[int, float]:
    """One Fig. 6 cell: throughput of ``app`` on a ``count``-device node."""
    spec_n = spec
    if scale_dataset_with_devices:
        spec_n = replace(spec, files=spec.files * count)
    books = _corpus_for(app, spec_n, functional)
    node = _build_node(count, functional, device_capacity, scenario=scenario)
    compressed = app in ("gunzip", "bunzip2")
    node.sim.run(node.sim.process(node.stage_corpus(books, compressed=compressed)))
    assignments = _stage_and_commands(node, books, app)

    def experiment() -> Generator:
        start = node.sim.now
        responses = yield from node.client.gather(assignments)
        return responses, node.sim.now - start

    responses, seconds = node.sim.run(node.sim.process(experiment()))
    bad = [r for r in responses if r is None or r.status.value not in ("ok", "app-error")]
    if bad:
        raise RuntimeError(f"fig6 run failed on {len(bad)} minions")
    return count, throughput_mb_s(_input_bytes(books, app), seconds)


def _fig6_one_sharded(
    app: str,
    count: int,
    config: ScenarioConfig,
    scale_dataset_with_devices: bool = True,
) -> tuple[int, float]:
    """One Fig. 6 cell on the sharded engine.

    ``config.sharding`` picks grouping and backend; the cell itself is the
    same weak-scaling measurement, with throughput derived from the job
    drill's makespan.  Decompression apps need compressed staging, which
    shard cells do not perform — the monolithic path covers those.
    """
    from repro.sim.shard import ShardRun

    if app in ("gunzip", "bunzip2"):
        raise ValueError(
            f"sharded fig6 does not support compressed-input app {app!r}"
        )
    spec = config.corpus
    if scale_dataset_with_devices:
        spec = replace(spec, files=spec.files * count)
    cell = replace(
        config,
        corpus=spec,
        fleet=replace(
            config.fleet,
            nodes=1,
            devices_per_node=count,
            replicas=1,
            with_baseline_ssd=False,
        ),
    )
    run = ShardRun(cell, workload="jobs", apps=(app,))
    run.prepare()
    try:
        run.execute()
        payload = run.finish()
    finally:
        run.close()
    scorecard = payload["result"]["scorecard"]
    if scorecard["lost"]:
        raise RuntimeError(f"fig6 shard run lost {scorecard['lost']} jobs")
    seconds = scorecard["makespan_ms"] / 1e3
    return count, throughput_mb_s(_input_bytes(run.books, app), seconds)


def fig6_cell(
    app: str,
    devices: int,
    files: int = DEFAULT_FIG6_SPEC.files,
    mean_file_bytes: int = DEFAULT_FIG6_SPEC.mean_file_bytes,
    size_spread: float = DEFAULT_FIG6_SPEC.size_spread,
    seed: int = DEFAULT_FIG6_SPEC.seed,
    functional: bool = True,
    device_capacity: int = 48 * 1024 * 1024,
    scale_dataset_with_devices: bool = True,
    scenario: dict | None = None,
) -> list:
    """One Fig. 6 cell as a JSON-encodable parallel-runner work item.

    Defaults reproduce :data:`DEFAULT_FIG6_SPEC`.  ``scenario`` is a
    :class:`~repro.config.ScenarioConfig` as a plain dict (the form job
    kwargs travel in, so it participates in the cache key); it supersedes
    the scalar corpus/capacity kwargs.
    """
    if scenario is not None:
        config = scenario_from_dict(scenario)
        if config.sharding is not None:
            count, throughput = _fig6_one_sharded(
                app, devices, config, scale_dataset_with_devices
            )
            return [count, throughput]
        count, throughput = _fig6_one(
            app, devices, config.corpus, config.flash.store_data,
            config.flash.capacity_bytes, scale_dataset_with_devices, config,
        )
        return [count, throughput]
    spec = CorpusSpec(
        files=files, mean_file_bytes=mean_file_bytes,
        size_spread=size_spread, seed=seed,
    )
    count, throughput = _fig6_one(
        app, devices, spec, functional, device_capacity,
        scale_dataset_with_devices,
    )
    return [count, throughput]


def fig6_linearity(results: Sequence[tuple[int, float]]) -> tuple[float, float, float]:
    """(slope, intercept, r^2) of throughput vs device count."""
    xs = [n for n, _ in results]
    ys = [tp for _, tp in results]
    return linear_fit(xs, ys)


# ---------------------------------------------------------------------------
# Fig. 7 — aggregated host + CompStors performance (bzip2)
# ---------------------------------------------------------------------------

def run_fig7(
    device_counts: Sequence[int] = (1, 2, 4),
    spec: CorpusSpec = DEFAULT_FIG6_SPEC,
    functional: bool = True,
    device_capacity: int = 48 * 1024 * 1024,
    scenario: ScenarioConfig | None = None,
) -> list[dict]:
    """Host and device bzip2 throughput measured separately, then combined.

    Returns rows ``{"devices": n, "host_mb_s": .., "compstor_mb_s": ..,
    "aggregate_mb_s": ..}``.
    """
    if scenario is not None:
        spec = scenario.corpus
        functional = scenario.flash.store_data
        device_capacity = scenario.flash.capacity_bytes
    # Host throughput is independent of the device count: measure once.
    host_tp = _fig7_host(spec, functional, device_capacity, scenario)
    device_curve = run_fig6(
        app="bzip2", device_counts=device_counts, spec=spec,
        functional=functional, device_capacity=device_capacity,
        scenario=scenario,
    )
    return [
        {
            "devices": n,
            "host_mb_s": host_tp,
            "compstor_mb_s": tp,
            "aggregate_mb_s": host_tp + tp,
        }
        for n, tp in device_curve
    ]


def _fig7_host(
    spec: CorpusSpec,
    functional: bool,
    device_capacity: int,
    scenario: ScenarioConfig | None = None,
) -> float:
    """Host-only bzip2 throughput over the Fig. 7 corpus (MB/s)."""
    books = _corpus_for("bzip2", spec, functional)
    node = _build_node(
        1, functional, device_capacity, with_baseline_ssd=True, scenario=scenario
    )
    node.sim.run(
        node.sim.process(node.stage_corpus(books, compressed=False, include_host=True))
    )
    runner = HostOnlyRunner(node)

    def host_experiment() -> Generator:
        statuses, wall = yield from runner.run_many(
            [f"bzip2 {book.name}" for book in books]
        )
        return statuses, wall

    statuses, host_wall = node.sim.run(node.sim.process(host_experiment()))
    if any(s.code != 0 for s in statuses):
        raise RuntimeError("host bzip2 run failed")
    return throughput_mb_s(sum(b.plain_size for b in books), host_wall)


def fig7_host_cell(
    files: int = DEFAULT_FIG6_SPEC.files,
    mean_file_bytes: int = DEFAULT_FIG6_SPEC.mean_file_bytes,
    size_spread: float = DEFAULT_FIG6_SPEC.size_spread,
    seed: int = DEFAULT_FIG6_SPEC.seed,
    functional: bool = True,
    device_capacity: int = 48 * 1024 * 1024,
    scenario: dict | None = None,
) -> float:
    """The Fig. 7 host-only measurement as a parallel-runner work item."""
    if scenario is not None:
        config = scenario_from_dict(scenario)
        return _fig7_host(
            config.corpus, config.flash.store_data,
            config.flash.capacity_bytes, config,
        )
    spec = CorpusSpec(
        files=files, mean_file_bytes=mean_file_bytes,
        size_spread=size_spread, seed=seed,
    )
    return _fig7_host(spec, functional, device_capacity)


# ---------------------------------------------------------------------------
# Fig. 8 — energy per gigabyte, CompStor vs Xeon
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Fig8Row:
    app: str
    compstor_j_per_gb: float
    xeon_j_per_gb: float
    paper_compstor: float
    paper_xeon: float

    @property
    def ratio(self) -> float:
        return self.xeon_j_per_gb / self.compstor_j_per_gb

    @property
    def paper_ratio(self) -> float:
        return self.paper_xeon / self.paper_compstor


FIG8_APPS = ("gzip", "gunzip", "bzip2", "bunzip2", "grep", "gawk")

#: Enough parallel files to keep all 8 Xeon cores / 4 A53 cores busy, as in
#: the calibration's attribution model, and large enough that the fixed
#: spawn/minion overheads vanish against per-byte costs.
DEFAULT_FIG8_SPEC = CorpusSpec(files=8, mean_file_bytes=256 * 1024, size_spread=0.1)


def _device_energy_run(
    app: str,
    spec: CorpusSpec,
    functional: bool,
    capacity: int,
    scenario: ScenarioConfig | None = None,
) -> float:
    """CompStor-side J/GB (device-only attribution, per the calibration)."""
    books = _corpus_for(app, spec, functional)
    node = _build_node(1, functional, capacity, scenario=scenario)
    compressed = app in ("gunzip", "bunzip2")
    node.sim.run(node.sim.process(node.stage_corpus(books, compressed=compressed)))
    assignments = _stage_and_commands(node, books, app)
    mark = node.meter.snapshot()

    def experiment() -> Generator:
        responses = yield from node.client.gather(assignments)
        return responses

    node.sim.run(node.sim.process(experiment()))
    report = node.meter.window(mark)
    device_j = report.subset(["compstor0"])
    return device_j / (_input_bytes(books, app) / 1e9)


def _host_energy_run(
    app: str,
    spec: CorpusSpec,
    functional: bool,
    capacity: int,
    scenario: ScenarioConfig | None = None,
) -> float:
    """Xeon-side J/GB (whole-server attribution)."""
    books = _corpus_for(app, spec, functional)
    node = _build_node(
        1, functional, capacity, with_baseline_ssd=True, scenario=scenario
    )
    compressed = app in ("gunzip", "bunzip2")
    node.sim.run(
        node.sim.process(
            node.stage_corpus(books, compressed=compressed, include_host=True)
        )
    )
    runner = HostOnlyRunner(node)
    lines = []
    for book in books:
        target = book.compressed_name if compressed else book.name
        if app in ("grep", "gawk"):
            lines.append(f"{app} xylophone {target}")
        else:
            lines.append(f"{app} {target}")
    mark = node.meter.snapshot()

    def experiment() -> Generator:
        statuses, wall = yield from runner.run_many(lines)
        return statuses

    node.sim.run(node.sim.process(experiment()))
    report = node.meter.window(mark)
    server_j = report.subset(["host", "baseline-ssd", "fabric"])
    return server_j / (_input_bytes(books, app) / 1e9)


def _fig8_row(
    app: str,
    spec: CorpusSpec,
    functional: bool,
    device_capacity: int,
    scenario: ScenarioConfig | None = None,
) -> Fig8Row:
    paper_c, paper_x = PAPER_FIG8_J_PER_GB[app]
    return Fig8Row(
        app=app,
        compstor_j_per_gb=_device_energy_run(
            app, spec, functional, device_capacity, scenario
        ),
        xeon_j_per_gb=_host_energy_run(
            app, spec, functional, device_capacity, scenario
        ),
        paper_compstor=paper_c,
        paper_xeon=paper_x,
    )


def run_fig8(
    apps: Sequence[str] = FIG8_APPS,
    spec: CorpusSpec = DEFAULT_FIG8_SPEC,
    functional: bool = True,
    device_capacity: int = 48 * 1024 * 1024,
    scenario: ScenarioConfig | None = None,
) -> list[Fig8Row]:
    """Energy per GB of input for each app on both platforms."""
    if scenario is not None:
        spec = scenario.corpus
        functional = scenario.flash.store_data
        device_capacity = scenario.flash.capacity_bytes
    return [
        _fig8_row(app, spec, functional, device_capacity, scenario) for app in apps
    ]


def fig8_cell(
    app: str,
    files: int = DEFAULT_FIG8_SPEC.files,
    mean_file_bytes: int = DEFAULT_FIG8_SPEC.mean_file_bytes,
    size_spread: float = DEFAULT_FIG8_SPEC.size_spread,
    seed: int = DEFAULT_FIG8_SPEC.seed,
    functional: bool = True,
    device_capacity: int = 48 * 1024 * 1024,
    scenario: dict | None = None,
) -> dict:
    """One Fig. 8 app row as a JSON-encodable parallel-runner work item."""
    if scenario is not None:
        config = scenario_from_dict(scenario)
        row = _fig8_row(
            app, config.corpus, config.flash.store_data,
            config.flash.capacity_bytes, config,
        )
        return asdict(row)
    spec = CorpusSpec(
        files=files, mean_file_bytes=mean_file_bytes,
        size_spread=size_spread, seed=seed,
    )
    return asdict(_fig8_row(app, spec, functional, device_capacity))
