"""Tests for the storage fleet (nodes x devices, concurrent minions)."""

import pytest

from repro.cluster import StorageFleet
from repro.proto import Command
from repro.workloads import BookCorpus, CorpusSpec


def build_fleet(nodes=2, devices=2):
    return StorageFleet.build(
        nodes=nodes, devices_per_node=devices, device_capacity=24 * 1024 * 1024
    )


def corpus(files, mean=32 * 1024):
    return BookCorpus(CorpusSpec(files=files, mean_file_bytes=mean)).generate()


def test_fleet_topology():
    fleet = build_fleet(nodes=3, devices=2)
    info = fleet.describe()
    assert info["nodes"] == 3
    assert info["devices"] == 6
    assert info["capacity_bytes"] > 0


def test_fleet_requires_nodes():
    with pytest.raises(ValueError):
        StorageFleet.build(nodes=0)


def test_stage_and_run_job_everywhere():
    fleet = build_fleet(nodes=2, devices=2)
    books = corpus(8)
    fleet.sim.run(fleet.sim.process(fleet.stage_corpus(books)))

    def job():
        return (
            yield from fleet.run_job(
                books,
                lambda book: Command(
                    command_line=f"grep {CorpusSpec().needle} {book.name}"
                ),
            )
        )

    responses, wall = fleet.sim.run(fleet.sim.process(job()))
    assert len(responses) == 8
    assert all(r is not None and r.status.value in ("ok", "app-error") for r in responses)
    assert wall > 0
    assert fleet.total_minions_served() == 8
    # every needle the corpus injected is found somewhere in the fleet
    found = sum(int(r.stdout) for r in responses if r.stdout)
    expected = sum(b.needle_count for b in books)
    assert found >= expected


def test_placement_covers_all_books_once():
    fleet = build_fleet(nodes=2, devices=2)
    books = corpus(10)
    placement = fleet.placement(books)
    placed = [b.name for part in placement.values() for b in part]
    assert sorted(placed) == sorted(b.name for b in books)
    assert len(placement) <= fleet.total_devices


def test_fleet_telemetry_covers_every_device():
    fleet = build_fleet(nodes=2, devices=3)

    def flow():
        return (yield from fleet.telemetry())

    snaps = fleet.sim.run(fleet.sim.process(flow()))
    assert len(snaps) == 6
    assert all(snap.active_minions == 0 for snap in snaps.values())


def test_fleet_wall_time_shrinks_with_more_nodes():
    """Fixed corpus, more nodes -> shorter job wall time (the distributed-
    processing scalability the title promises)."""
    # many small books: the critical path is waves-of-work, not one big file
    books = BookCorpus(
        CorpusSpec(files=32, mean_file_bytes=24 * 1024, size_spread=0.1)
    ).generate()

    def run_with(nodes):
        fleet = StorageFleet.build(
            nodes=nodes, devices_per_node=2, device_capacity=24 * 1024 * 1024
        )
        fleet.sim.run(fleet.sim.process(fleet.stage_corpus(books)))

        def job():
            return (
                yield from fleet.run_job(
                    books, lambda b: Command(command_line=f"gzip {b.name}")
                )
            )

        responses, wall = fleet.sim.run(fleet.sim.process(job()))
        assert all(r.ok for r in responses)
        return wall

    one = run_with(1)
    four = run_with(4)
    assert four < 0.45 * one
