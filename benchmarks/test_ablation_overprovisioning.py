"""Ablation — write amplification vs over-provisioning.

The textbook FTL trade-off the 24 TB drive's economics hinge on: more spare
area means cheaper GC (victims are emptier) at the cost of sellable
capacity.  Random small overwrites across the full logical space, swept
over OP ratios — WA must fall monotonically (within noise) as OP grows.
"""

from repro.analysis.experiments import format_series_table
from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer, FtlConfig
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=2, planes_per_die=1, blocks_per_plane=12,
    pages_per_block=16, page_size=2048,
)
OP_RATIOS = (0.10, 0.20, 0.35, 0.50)
WRITES = 3000


def run_op_ratio(op_ratio: float) -> dict:
    sim = Simulator(seed=17)
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9),
                       store_data=False)
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=2048)))
    ftl = FlashTranslationLayer(
        sim, flash, ecc,
        config=FtlConfig(op_ratio=op_ratio, write_buffer_pages=16),
    )
    rng = sim.rng("workload")
    logical = ftl.logical_pages

    def churn():
        # fill once, then uniform random overwrites
        for lpn in range(logical):
            yield from ftl.write(lpn, None)
        for lpn in rng.integers(0, logical, size=WRITES):
            yield from ftl.write(int(lpn), None)
        yield from ftl.flush()

    sim.run(sim.process(churn()))
    return {
        "op_ratio": op_ratio,
        "wa": ftl.write_amplification(),
        "gc_collections": ftl.gc.collections,
        "relocated": ftl.gc.pages_relocated,
    }


def test_ablation_overprovisioning(benchmark):
    def experiment():
        return [run_op_ratio(op) for op in OP_RATIOS]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n" + format_series_table(
        f"Ablation — WA vs over-provisioning ({WRITES} uniform overwrites)",
        ["OP ratio", "write amplification", "GC collections", "pages relocated"],
        [[r["op_ratio"], r["wa"], r["gc_collections"], r["relocated"]] for r in rows],
    ))

    was = [r["wa"] for r in rows]
    # all sane (uniform-random WA at 10% OP is ~5 in the literature, and
    # that is exactly where this lands)
    assert all(1.0 <= wa < 8.0 for wa in was)
    # monotone: thin OP pays the most, generous OP the least
    assert was == sorted(was, reverse=True)
    # and the drop is substantial (the economics of spare area)
    assert was[0] > 2.5 * was[-1]
