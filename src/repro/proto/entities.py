"""Command / Response / Minion / Query data structures (paper Section III.B).

A **minion** "travels from a client to a CompStor and delivers a command...
then waits until the in-situ processing is done to deliver the response back
to the client" — the client populates the command fields, the CompStor
populates the response fields (paper Fig. 3).

A **query** delivers an administrative message: load an executable at
runtime, or fetch device status (core utilisation, temperature) for load
balancing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = [
    "Command", "Minion", "Query", "QueryKind", "Response", "ResponseStatus",
    "reset_ids",
]

_minion_ids = itertools.count(1)
_query_ids = itertools.count(1)


def reset_ids() -> None:
    """Restart minion/query ID allocation (fresh-process state).

    IDs are process-global (they tag trace payloads and responses), so a
    scenario's IDs depend on what ran earlier in the process.  Hermetic
    scenarios — golden-schedule digests, determinism A/B comparisons —
    reset allocation first so a run is a pure function of (seed, model).
    """
    global _minion_ids, _query_ids
    _minion_ids = itertools.count(1)
    _query_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Command:
    """What to execute in-situ.

    ``command_line`` is a Linux shell command or pipeline; set ``script``
    for a multi-line shell script instead.  ``input_files`` / ``output_file``
    document the data contract (the agent validates inputs exist before
    spawning).  Linux-OS support is what makes arbitrary command lines —
    and dynamic task loading — possible at all (paper Table I).
    """

    command_line: str = ""
    script: str = ""
    input_files: tuple[str, ...] = ()
    output_file: str = ""
    priority: int = 0
    access: frozenset[str] = frozenset({"read", "write"})
    #: Watchdog: the agent kills the task after this many seconds of
    #: in-situ execution (0 = unlimited).
    timeout_seconds: float = 0.0

    def __post_init__(self) -> None:
        if bool(self.command_line) == bool(self.script):
            raise ValueError("exactly one of command_line or script must be set")
        if self.timeout_seconds < 0:
            raise ValueError("timeout_seconds must be non-negative")

    @property
    def wire_bytes(self) -> int:
        """Serialised size estimate for PCIe transfer accounting."""
        return 128 + len(self.command_line) + len(self.script) + sum(
            len(f) for f in self.input_files
        )


class ResponseStatus(Enum):
    OK = "ok"
    APP_ERROR = "app-error"  # executable ran, non-zero exit
    REJECTED = "rejected"  # agent refused (missing input, unknown binary)
    CRASHED = "crashed"  # executable raised
    TIMEOUT = "timeout"  # agent watchdog killed the task
    ABORTED = "aborted"  # infrastructure killed the task (device/agent death)


@dataclass(slots=True)
class Response:
    """Outcome of an in-situ task: final status + time consumed inside the
    CompStor (paper: "the information about the outcome ... such as the
    final status of the command and time consumed to execute it")."""

    status: ResponseStatus = ResponseStatus.OK
    exit_code: int = 0
    stdout: bytes = b""
    detail: dict[str, Any] = field(default_factory=dict)
    execution_seconds: float = 0.0
    device: str = ""

    @property
    def ok(self) -> bool:
        return self.status == ResponseStatus.OK

    @property
    def wire_bytes(self) -> int:
        return 128 + len(self.stdout)


@dataclass(slots=True)
class Minion:
    """The command+response envelope (paper Fig. 3)."""

    command: Command
    response: Response | None = None
    minion_id: int = field(default_factory=lambda: next(_minion_ids))
    client: str = "client"
    created_at: float = 0.0
    completed_at: float | None = None
    #: Observability context (``repro.obs.spans.SpanContext``): each hop
    #: (client -> NVMe -> agent) re-parents it so the minion's life
    #: reconstructs as one causally-linked span tree.  ``None`` when the
    #: sender traces nothing — the wire format does not grow.
    span: Any = None

    @property
    def done(self) -> bool:
        return self.response is not None

    @property
    def round_trip_seconds(self) -> float | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at

    @property
    def nbytes(self) -> int:
        """Return-trip wire size (minion + populated response)."""
        size = self.command.wire_bytes
        if self.response is not None:
            size += self.response.wire_bytes
        return size


class QueryKind(Enum):
    STATUS = "status"  # telemetry: utilisation, temperature, uptime
    LOAD_EXECUTABLE = "load-executable"  # dynamic task loading
    LIST_EXECUTABLES = "list-executables"
    LIST_FILES = "list-files"
    PING = "ping"


@dataclass(slots=True)
class Query:
    """Administrative round-trip (cannot trigger in-situ processing)."""

    kind: QueryKind
    payload: Any = None
    reply: Any = None
    query_id: int = field(default_factory=lambda: next(_query_ids))

    @property
    def wire_bytes(self) -> int:
        if self.kind == QueryKind.LOAD_EXECUTABLE:
            # shipping a binary image: model a realistic ELF size
            return 512 * 1024
        return 256

    @property
    def nbytes(self) -> int:
        """Return-trip wire size (reply payloads are small)."""
        return 512
