"""End-to-end failure recovery at fleet scale (the PR's acceptance bar).

A fleet job run over >= 4 devices with one device killed mid-job must
complete via replica failover, lose zero minions while a surviving replica
exists, and account for every minion: ``completed + recovered + lost ==
dispatched``.  The hypothesis drill hardens that accounting identity
against randomized fault schedules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import StorageFleet, StorageNode
from repro.faults import BreakerConfig, FaultInjector, FaultPlan, RetryPolicy
from repro.proto import Command, ResponseStatus
from repro.workloads import BookCorpus, CorpusSpec


def grep(book):
    return Command(command_line=f"grep xylophone {book.name}")


def answered(response):
    """A real application outcome (grep exits 1 on zero matches)."""
    return response is not None and response.status in (
        ResponseStatus.OK,
        ResponseStatus.APP_ERROR,
    )


def build_fleet(seed=0, books=8, replicas=2, **fleet_kw):
    fleet = StorageFleet.build(
        nodes=2,
        devices_per_node=2,
        seed=seed,
        device_capacity=24 * 1024 * 1024,
        retry_policy=fleet_kw.pop("retry_policy", RetryPolicy()),
        breaker_config=fleet_kw.pop("breaker_config", BreakerConfig()),
        **fleet_kw,
    )
    corpus = BookCorpus(
        CorpusSpec(files=books, mean_file_bytes=16 * 1024, seed=seed)
    ).generate()
    fleet.sim.run(
        fleet.sim.process(fleet.stage_corpus(corpus, replicas=replicas))
    )
    return fleet, corpus


def run_job(fleet, corpus):
    def job():
        return (yield from fleet.run_job(corpus, grep))

    return fleet.sim.run(fleet.sim.process(job()))


def poll_health(fleet):
    def poll():
        return (yield from fleet.health())

    return fleet.sim.run(fleet.sim.process(poll()))


def test_device_killed_mid_job_loses_nothing_with_replicas():
    fleet, corpus = build_fleet(replicas=2)
    victim = fleet.device_ring()[1]
    plan = FaultPlan().kill_device(*victim, at=fleet.sim.now + 2e-4)
    FaultInjector.for_fleet(fleet, plan).start()

    report = run_job(fleet, corpus)
    assert report.dispatched == len(corpus)
    assert report.accounted == report.dispatched
    assert report.lost == ()
    assert report.recovered > 0 and report.failovers > 0
    assert report.degraded
    # every slot answered, and the answers are real
    assert all(answered(r) for r in report.responses)
    # unpacking still works as the historical 2-tuple
    responses, wall = report
    assert responses is report.responses and wall == report.wall_seconds

    health = poll_health(fleet)
    assert health.degraded
    assert f"node{victim[0]}/{victim[1]}" in health.unreachable_devices
    assert health.failovers == report.failovers
    assert health.lost_minions == 0
    assert any("unreachable" in alert for alert in health.alerts)


def test_no_surviving_replica_falls_back_to_the_host():
    """With a single copy per book and the host holding the dataset, a dead
    device's minions complete host-side (the paper's baseline path doubles
    as the last-resort degraded mode)."""
    node = StorageNode.build(
        devices=2,
        seed=0,
        device_capacity=24 * 1024 * 1024,
        with_baseline_ssd=True,
        retry_policy=RetryPolicy(),
        breaker_config=BreakerConfig(),
    )
    corpus = BookCorpus(
        CorpusSpec(files=4, mean_file_bytes=16 * 1024, seed=0)
    ).generate()
    node.sim.run(
        node.sim.process(
            node.stage_corpus(corpus, compressed=False, include_host=True)
        )
    )
    fleet = StorageFleet(node.sim, [node])
    plan = FaultPlan().kill_device(0, "compstor0", at=fleet.sim.now)
    FaultInjector.for_fleet(fleet, plan).start()

    report = run_job(fleet, corpus)
    assert report.lost == ()
    assert report.accounted == report.dispatched == len(corpus)
    assert report.host_fallbacks > 0 and report.failovers == 0
    rescued = [r for r in report.responses if r.device == "host"]
    assert len(rescued) == report.host_fallbacks
    assert all(answered(r) for r in report.responses)

    health = poll_health(fleet)
    assert health.host_fallbacks == report.host_fallbacks
    assert "node0/compstor0" in health.unreachable_devices


def test_losses_are_reported_not_raised():
    """No replicas, no host copy: the dead device's minions are *lost*,
    loudly — accounting still closes and the job still returns."""
    fleet, corpus = build_fleet(books=4, replicas=1)
    plan = FaultPlan().kill_device(*fleet.device_ring()[0], at=fleet.sim.now)
    FaultInjector.for_fleet(fleet, plan).start()
    report = run_job(fleet, corpus)
    assert report.lost  # something was genuinely unrecoverable
    assert report.accounted == report.dispatched
    assert all(
        (r is None) == (book.name in report.lost)
        for r, book in zip(report.responses, corpus)
    )
    health = poll_health(fleet)
    assert health.lost_minions == len(report.lost)
    assert any("lost" in alert for alert in health.alerts)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_chaos_always_terminates_with_closed_accounting(seed):
    """Whatever a random fault schedule does — permanent crashes, agent
    restarts, transient storms, limping drives — the job terminates and
    every minion lands in exactly one bucket."""
    fleet, corpus = build_fleet(
        seed=seed,
        books=4,
        replicas=2,
        retry_policy=RetryPolicy(max_attempts=3, deadline=50e-3),
        breaker_config=BreakerConfig(failure_threshold=3, cooldown=5e-3),
    )
    plan = FaultPlan.random(
        seed, fleet.device_ring(), horizon=fleet.sim.now + 5e-3, faults=3
    )
    FaultInjector.for_fleet(fleet, plan).start()
    report = run_job(fleet, corpus)
    assert len(report.responses) == report.dispatched == len(corpus)
    assert report.completed + report.recovered + len(report.lost) == report.dispatched
    assert all(r is None for r, b in zip(report.responses, corpus) if b.name in report.lost)
    health = poll_health(fleet)
    assert health.lost_minions == len(report.lost)


def test_second_corpus_staging_preserves_first_corpus_chains():
    """Regression: ``stage_corpus`` used to rebuild the replica map from
    scratch, wiping the chains of every previously staged corpus — so a
    primary crash after staging a second corpus lost first-corpus minions
    instead of failing over."""
    from dataclasses import replace

    fleet, first = build_fleet(replicas=2)
    chains_before = {b.name: fleet.replica_targets(b.name) for b in first}
    assert all(len(chain) == 2 for chain in chains_before.values())
    second = [
        replace(b, name=f"alt_{b.name}")
        for b in BookCorpus(
            CorpusSpec(files=4, mean_file_bytes=16 * 1024, seed=3)
        ).generate()
    ]
    fleet.sim.run(fleet.sim.process(fleet.stage_corpus(second, replicas=2)))
    # chains recorded by the first staging must survive the second, verbatim
    for book in first:
        assert fleet.replica_targets(book.name) == chains_before[book.name]
    # and they must still be *live*: crash a first-corpus primary mid-job
    victim = chains_before[first[0].name][0]
    plan = FaultPlan().kill_device(*victim, at=fleet.sim.now + 2e-4)
    FaultInjector.for_fleet(fleet, plan).start()
    report = run_job(fleet, first)
    assert report.lost == ()
    assert report.failovers > 0
    assert all(answered(r) for r in report.responses)
