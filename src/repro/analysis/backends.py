"""Backend comparison cells: the same in-situ workload per device backend.

The device backend (page-mapped vs zoned) is a *storage* axis: it changes
where pages land on flash, how garbage collection reclaims space, and
therefore timing — but it must never change what a minion computes.  The
cells here make that claim checkable: each cell runs a Fig. 6-style
weak-scaling workload on one ``(backend, app, devices)`` point and digests
every minion's status + stdout in assignment order.  Equal digests across
backends ⇒ the computation is backend-independent; the throughput columns
then compare the backends' storage behaviour on identical work.

Cells are JSON-encodable parallel-runner work items (see
:func:`repro.parallel.matrix.backends_jobs`), so a backend sweep runs under
the same deterministic matrix machinery as the figures.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Generator

from repro.analysis.experiments import throughput_mb_s
from repro.analysis.figures import (
    _build_node,
    _corpus_for,
    _input_bytes,
    _stage_and_commands,
)
from repro.config import DeviceBackendConfig, scenario_from_dict
from repro.ftl import DEVICE_BACKENDS

__all__ = ["BACKEND_APPS", "backend_cell"]

#: Apps whose output the comparison pins across backends.  ``grep`` reads
#: plain text and emits matches; ``gzip`` reads plain text and emits a
#: compressed stream — together they cover scan-heavy and transform-heavy
#: minions without needing compressed staging.
BACKEND_APPS: tuple[str, ...] = ("grep", "gzip")


def backend_cell(
    backend: str,
    app: str,
    devices: int = 2,
    scenario: dict | None = None,
) -> dict:
    """One comparison cell: ``app`` on a ``devices``-node under ``backend``.

    ``scenario`` is a :class:`~repro.config.ScenarioConfig` as a plain dict
    (the form job kwargs travel in, so it participates in the matrix cache
    key).  The cell replaces only the scenario's ``device.backend`` — any
    zoned knobs (``zone_blocks``, ``max_open_zones``) set on the scenario
    are honoured — and runs the monolithic engine regardless of
    ``sharding`` so every backend sees an identical workload.

    Returns a JSON-encodable dict with the throughput, an order-sensitive
    digest of every minion's ``status``/``stdout``, and the per-device
    storage counters that differ by construction (GC collections, write
    amplification, zoned-only zone telemetry).
    """
    if backend not in DEVICE_BACKENDS:
        raise ValueError(f"unknown device backend {backend!r}; use {sorted(DEVICE_BACKENDS)}")
    if scenario is None:
        from repro.config import preset

        config = preset("smoke")
    else:
        config = scenario_from_dict(scenario)
    base = config.device if config.device is not None else DeviceBackendConfig()
    config = replace(config, device=replace(base, backend=backend), sharding=None)

    functional = config.flash.store_data
    spec = replace(config.corpus, files=config.corpus.files * devices)
    books = _corpus_for(app, spec, functional)
    node = _build_node(
        devices, functional, config.flash.capacity_bytes, scenario=config
    )
    compressed = app in ("gunzip", "bunzip2")
    node.sim.run(node.sim.process(node.stage_corpus(books, compressed=compressed)))
    assignments = _stage_and_commands(node, books, app)

    def experiment() -> Generator:
        start = node.sim.now
        responses = yield from node.client.gather(assignments)
        return responses, node.sim.now - start

    responses, seconds = node.sim.run(node.sim.process(experiment()))
    bad = [r for r in responses if r is None or r.status.value not in ("ok", "app-error")]
    if bad:
        raise RuntimeError(
            f"backend cell {backend}/{app}/n{devices} failed on {len(bad)} minions"
        )

    digest = hashlib.sha256()
    digest.update(f"{app}:{devices}".encode())
    for response in responses:
        digest.update(response.status.value.encode())
        digest.update(b"\x00")
        digest.update(response.stdout)
        digest.update(b"\x01")

    ftls = [ssd.ftl for ssd in node.compstors]
    programs = sum(ftl.flash.stats.programs for ftl in ftls)
    host_pages = sum(ftl.host_pages_programmed for ftl in ftls)
    cell = {
        "backend": backend,
        "app": app,
        "devices": devices,
        "minions": len(responses),
        "throughput_mb_s": round(
            throughput_mb_s(_input_bytes(books, app), seconds), 3
        ),
        "output_digest": digest.hexdigest()[:16],
        "gc_collections": sum(ftl.health_stats()["gc_collections"] for ftl in ftls),
        "write_amplification": round(
            programs / host_pages if host_pages else 1.0, 4
        ),
        "uncorrectable_reads": sum(ftl.uncorrectable_reads for ftl in ftls),
    }
    if backend == "zoned":
        reports = [ftl.zone_report() for ftl in ftls]
        cell["zones"] = {
            "per_device": reports[0]["zones"],
            "resets": sum(r["resets"] for r in reports),
            "retired": sum(r["retired"] for r in reports),
            "full": sum(r["full"] for r in reports),
            "open": sum(r["open"] for r in reports),
        }
    return cell
