"""The preset registry: named, pinned scenarios.

Each preset is one :class:`~repro.config.schema.ScenarioConfig` whose
digest is a checked-in golden (``tests/golden_config_digests.txt``): CI
recomputes every preset digest and diffs, so a preset can never drift
silently.  Derive sweep cells with ``--set`` overrides; the overridden
scenario's digest — printed in every scorecard header — identifies the
cell exactly.
"""

from __future__ import annotations

from repro.config.schema import (
    ClosedLoopConfig,
    FaultSpec,
    FaultsConfig,
    FlashConfig,
    FleetConfig,
    ObjstoreConfig,
    OverloadConfig,
    ScenarioConfig,
    ServiceConfig,
    ShardingConfig,
    TrafficConfig,
)
from repro.faults.retry import BreakerConfig, RetryPolicy
from repro.workloads import CorpusSpec

__all__ = ["PRESETS", "preset", "preset_names"]


def _paper_prototype() -> ScenarioConfig:
    """The default experimental stack: one node, four CompStors, the
    default corpus — the shape most unit experiments assume."""
    return ScenarioConfig(name="paper-prototype")


def _smoke() -> ScenarioConfig:
    """Seconds-of-wall-clock sanity run: one tiny device, two small books."""
    return ScenarioConfig(
        name="smoke",
        flash=FlashConfig(capacity_bytes=16 * 1024 * 1024),
        fleet=FleetConfig(nodes=1, devices_per_node=1),
        corpus=CorpusSpec(files=2, mean_file_bytes=24 * 1024, size_spread=0.2),
    )


def _fig6() -> ScenarioConfig:
    """The Fig. 6 weak-scaling cell: per-device corpus share from
    ``repro.analysis.figures.DEFAULT_FIG6_SPEC``, 48 MiB devices."""
    return ScenarioConfig(
        name="fig6",
        flash=FlashConfig(capacity_bytes=48 * 1024 * 1024),
        fleet=FleetConfig(nodes=1, devices_per_node=4),
        corpus=CorpusSpec(files=8, mean_file_bytes=96 * 1024, size_spread=0.2),
    )


def _fig8_ablation() -> ScenarioConfig:
    """The Fig. 8 energy cell: one CompStor vs the host baseline drive,
    corpus from ``DEFAULT_FIG8_SPEC`` (enough files to keep all cores busy)."""
    return ScenarioConfig(
        name="fig8-ablation",
        flash=FlashConfig(capacity_bytes=48 * 1024 * 1024),
        fleet=FleetConfig(nodes=1, devices_per_node=1, with_baseline_ssd=True),
        corpus=CorpusSpec(files=8, mean_file_bytes=256 * 1024, size_spread=0.1),
    )


def _chaos_drill() -> ScenarioConfig:
    """The pinned recovery drill: replicated 2x2 fleet with retries and
    breakers armed, one recoverable device kill plus a transient window."""
    return ScenarioConfig(
        name="chaos-drill",
        flash=FlashConfig(capacity_bytes=24 * 1024 * 1024),
        fleet=FleetConfig(nodes=2, devices_per_node=2, replicas=2),
        corpus=CorpusSpec(files=8, mean_file_bytes=32 * 1024, seed=0),
        retry=RetryPolicy(),
        breaker=BreakerConfig(),
        faults=FaultsConfig(
            seed=0,
            events=(
                FaultSpec(kind="device-crash", ring_index=1, at_ms=0.2, duration_ms=2.0),
                FaultSpec(kind="transient", ring_index=2, at_ms=0.0, duration_ms=1.0, fraction=0.5),
            ),
        ),
    )


def _traffic_smoke() -> ScenarioConfig:
    """The pinned multi-tenant serving drill: the chaos-drill fleet (2x2,
    replicated, retries + breakers) under a short seeded Poisson stream
    drawn from a million-tenant population, with a transient-error window
    and a recoverable device kill landing mid-traffic."""
    return ScenarioConfig(
        name="traffic-smoke",
        flash=FlashConfig(capacity_bytes=24 * 1024 * 1024),
        fleet=FleetConfig(nodes=2, devices_per_node=2, replicas=2),
        corpus=CorpusSpec(files=8, mean_file_bytes=32 * 1024, seed=0),
        retry=RetryPolicy(),
        breaker=BreakerConfig(),
        faults=FaultsConfig(
            seed=0,
            events=(
                FaultSpec(kind="transient", ring_index=1, at_ms=5.0,
                          duration_ms=10.0, fraction=0.5),
                FaultSpec(kind="device-crash", ring_index=2, at_ms=10.0,
                          duration_ms=15.0),
            ),
        ),
        service=ServiceConfig(queue_depth=32, concurrency=8),
        traffic=TrafficConfig(pattern="poisson", requests=160, rate=4000.0,
                              tenants=1_000_000, skew=1.5, seed=0),
    )


def _traffic_burst() -> ScenarioConfig:
    """The overload cell: bursty hot-tenant arrivals at 2x sustainable rate
    into two dispatch slots — sized so every mechanism fires visibly
    (queue-full *and* rate-limit sheds, SLO violations, Jain well below
    1.0), the regime where admission control and fair queuing earn their
    keep."""
    return ScenarioConfig(
        name="traffic-burst",
        flash=FlashConfig(capacity_bytes=24 * 1024 * 1024),
        fleet=FleetConfig(nodes=2, devices_per_node=2, replicas=2),
        corpus=CorpusSpec(files=8, mean_file_bytes=32 * 1024, seed=0),
        retry=RetryPolicy(),
        breaker=BreakerConfig(),
        service=ServiceConfig(queue_depth=32, concurrency=2),
        traffic=TrafficConfig(pattern="bursty", requests=256, rate=8000.0,
                              tenants=2000, skew=8.0, seed=0,
                              burst_len=64, burst_factor=8.0),
    )


def _traffic_closedloop() -> ScenarioConfig:
    """Closed-loop serving with the full defense stack armed: sessions with
    think time and retries-on-shed over the replicated 2x2 fleet, CoDel +
    brownout admission, a retry budget, and the AIMD autoscaler."""
    return ScenarioConfig(
        name="traffic-closedloop",
        flash=FlashConfig(capacity_bytes=24 * 1024 * 1024),
        fleet=FleetConfig(nodes=2, devices_per_node=2, replicas=2),
        corpus=CorpusSpec(files=8, mean_file_bytes=32 * 1024, seed=0),
        retry=RetryPolicy(),
        breaker=BreakerConfig(),
        service=ServiceConfig(queue_depth=32, concurrency=4),
        closed_loop=ClosedLoopConfig(
            sessions=48, duration_ms=60.0, think_ms=4.0, timeout_ms=12.0,
            max_retries=3, seed=0,
        ),
        overload=OverloadConfig(min_concurrency=4, max_concurrency=12,
                                aimd_low_ms=0.5, aimd_high_ms=4.0),
    )


def _metastable() -> ScenarioConfig:
    """The metastable-failure drill: sustained closed-loop load, then a
    transient fleet-wide limp window (firmware latency x12 for 40 ms)
    mid-run.  The trigger fills the dispatch queue past the point where
    sojourn exceeds the client timeout; from there abandoned-but-served
    (stale) work plus the retry storm keeps the queue full *after* the
    fault clears — the self-sustaining degraded state.  With defenses
    armed the drill asserts goodput returns to ``recovery_bar`` of the
    pre-trigger rate within ``recovery_ms`` of the fault clearing; the
    defenses-off counterfactual (same seed, same trigger) demonstrates
    the sustained degradation the defenses prevent.

    Load shape matters for bistability: think time (40 ms) well above the
    client timeout (12 ms) keeps healthy demand under fleet capacity
    while letting 56 abandon-retry sessions generate admitted pressure
    above it — both attractors exist, and the trigger picks."""
    return ScenarioConfig(
        name="metastable",
        flash=FlashConfig(capacity_bytes=24 * 1024 * 1024),
        fleet=FleetConfig(nodes=2, devices_per_node=2, replicas=2),
        corpus=CorpusSpec(files=8, mean_file_bytes=32 * 1024, seed=0),
        retry=RetryPolicy(),
        breaker=BreakerConfig(),
        faults=FaultsConfig(
            seed=0,
            events=tuple(
                FaultSpec(kind="limp", ring_index=ring, at_ms=60.0,
                          duration_ms=40.0, factor=12.0)
                for ring in range(4)
            ),
        ),
        service=ServiceConfig(queue_depth=32, concurrency=4),
        closed_loop=ClosedLoopConfig(
            sessions=56, duration_ms=280.0, think_ms=40.0, timeout_ms=12.0,
            max_retries=3, seed=0,
            goodput_window_ms=10.0, recovery_ms=60.0, recovery_bar=0.9,
        ),
        overload=OverloadConfig(min_concurrency=4, max_concurrency=16,
                                aimd_low_ms=0.5, aimd_high_ms=4.0),
    )


def _traffic_soak() -> ScenarioConfig:
    """The 100k-request deterministic soak: a replicated 4x4 fleet serving
    a seeded Poisson stream long enough to shake out slow state leaks
    (queue residue, id drift, horizon creep) that short drills never see.
    No faults — the soak isolates the steady-state serving path, so any
    digest drift between runs or shard counts is a determinism bug, not
    recovery noise.  Ships with a sharding section so the scale-out engine
    is the default execution; ``--shards``/``--set`` can still re-group
    it without changing the scorecard digest."""
    return ScenarioConfig(
        name="traffic-soak",
        flash=FlashConfig(capacity_bytes=24 * 1024 * 1024),
        fleet=FleetConfig(nodes=4, devices_per_node=4, replicas=2),
        corpus=CorpusSpec(files=16, mean_file_bytes=16 * 1024, seed=0),
        retry=RetryPolicy(),
        breaker=BreakerConfig(),
        service=ServiceConfig(queue_depth=64, concurrency=16),
        traffic=TrafficConfig(pattern="poisson", requests=100_000, rate=40_000.0,
                              tenants=1_000_000, skew=1.2, seed=0),
        sharding=ShardingConfig(shards=4, backend="sequential", window_us=50.0),
    )


def _objstore_smoke() -> ScenarioConfig:
    """The pinned dedup-store drill: the replicated 2x2 fleet ingesting a
    half-duplicate object batch through in-situ ``chunksum`` minions, with
    a recoverable device crash landing mid-ingest and a second one during
    the GC pass — the crash-recovery invariant (no committed chunk lost)
    is exactly what this preset's scorecard digest pins."""
    return ScenarioConfig(
        name="objstore-smoke",
        flash=FlashConfig(capacity_bytes=24 * 1024 * 1024),
        fleet=FleetConfig(nodes=2, devices_per_node=2, replicas=2),
        corpus=CorpusSpec(files=4, mean_file_bytes=16 * 1024, seed=0),
        retry=RetryPolicy(),
        breaker=BreakerConfig(),
        faults=FaultsConfig(
            seed=0,
            events=(
                # mid-ingest (the batch takes ~40 ms to land)
                FaultSpec(kind="device-crash", ring_index=1, at_ms=0.5,
                          duration_ms=4.0),
                # mid-GC: the drill schedules its first sweep inside this
                # window, so reclamation runs with a device down
                FaultSpec(kind="device-crash", ring_index=3, at_ms=55.0,
                          duration_ms=20.0),
            ),
        ),
        objstore=ObjstoreConfig(objects=24, mean_object_bytes=24 * 1024,
                                dedup_ratio=0.5, replicas=2, seed=0),
    )


PRESETS = {
    "paper-prototype": _paper_prototype,
    "smoke": _smoke,
    "fig6": _fig6,
    "fig8-ablation": _fig8_ablation,
    "chaos-drill": _chaos_drill,
    "traffic-smoke": _traffic_smoke,
    "traffic-burst": _traffic_burst,
    "traffic-closedloop": _traffic_closedloop,
    "traffic-soak": _traffic_soak,
    "metastable": _metastable,
    "objstore-smoke": _objstore_smoke,
}


def preset_names() -> tuple[str, ...]:
    return tuple(PRESETS)


def preset(name: str, overrides: tuple[str, ...] = ()) -> ScenarioConfig:
    """A fresh instance of the named preset, with ``--set`` overrides applied."""
    try:
        build = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; use {', '.join(PRESETS)}"
        ) from None
    config = build()
    if overrides:
        from repro.config.overrides import apply_overrides

        config = apply_overrides(config, overrides)
    return config
