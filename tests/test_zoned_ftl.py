"""Unit and property tests for the zoned (ZNS-style) translation backend.

The properties named by the backend contract:

- **write-pointer monotonicity per zone** — a zone's pointer only ever
  advances between resets; any decrease coincides with a reset (host or GC);
- **read-after-write across resets** — the device agrees with a dict oracle
  through arbitrary write/read/trim/flush/reset interleavings;
- **copy-forward preserves live data** — GC churn never changes what a
  mapped logical page reads back;
- **append never overwrites** — the NAND array raises ``FlashOpError`` on
  any reprogram or out-of-order program, so a clean run under concurrent
  appends *is* the proof.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FtlConfig, LogicalIOError, ZonedFtl, ZoneState, create_backend
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=2, planes_per_die=1, blocks_per_plane=6,
    pages_per_block=8, page_size=2048,
)

CONFIG = FtlConfig(op_ratio=0.34, write_buffer_pages=4)


def make_zoned(sim=None, geometry=GEO, config=CONFIG, zone_blocks=2,
               max_open_zones=2, rber0=1e-9, **flash_kw):
    sim = sim or Simulator(seed=7)
    flash = FlashArray(
        sim, geometry=geometry, error_model=BitErrorModel(rber0=rber0), **flash_kw
    )
    layout = CodewordLayout(data_bytes=min(2048, geometry.page_size))
    ecc = EccEngine(sim, EccConfig(layout=layout))
    ftl = ZonedFtl(sim, flash, ecc, config=config,
                   zone_blocks=zone_blocks, max_open_zones=max_open_zones)
    return sim, ftl


def drive(sim, gen):
    return sim.run(sim.process(gen))


# -- basics -----------------------------------------------------------------


def test_write_read_roundtrip():
    sim, ftl = make_zoned()

    def flow():
        yield from ftl.write(0, b"alpha")
        yield from ftl.flush()
        return (yield from ftl.read(0))

    assert drive(sim, flow()) == b"alpha"


def test_read_unwritten_page_returns_none():
    sim, ftl = make_zoned()

    def flow():
        return (yield from ftl.read(5))

    assert drive(sim, flow()) is None


def test_buffered_read_hit_before_flush():
    sim, ftl = make_zoned()

    def flow():
        yield from ftl.write(1, b"buffered")
        return (yield from ftl.read(1))

    assert drive(sim, flow()) == b"buffered"
    assert ftl.buffer_read_hits == 1


def test_overwrite_returns_latest():
    sim, ftl = make_zoned()

    def flow():
        for value in (b"v1", b"v2", b"v3"):
            yield from ftl.write(4, value)
            yield from ftl.flush()
        return (yield from ftl.read(4))

    assert drive(sim, flow()) == b"v3"


def test_trim_unmaps_and_reads_none():
    sim, ftl = make_zoned()

    def flow():
        yield from ftl.write(2, b"doomed")
        yield from ftl.flush()
        yield from ftl.trim([2])
        return (yield from ftl.read(2))

    assert drive(sim, flow()) is None


def test_out_of_range_lpn_rejected():
    sim, ftl = make_zoned()
    with pytest.raises(ValueError):
        drive(sim, ftl.read(ftl.logical_pages))
    with pytest.raises(ValueError):
        drive(sim, ftl.write(-1, b"x"))


def test_construction_validation():
    sim = Simulator()
    flash = FlashArray(sim, geometry=GEO)
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=2048)))
    with pytest.raises(ValueError):
        ZonedFtl(sim, flash, ecc, zone_blocks=0)
    with pytest.raises(ValueError):
        ZonedFtl(sim, flash, ecc, max_open_zones=0)
    with pytest.raises(ValueError):
        # 24 blocks / 12 per zone = 2 zones < 3
        ZonedFtl(sim, flash, ecc, config=CONFIG, zone_blocks=12)
    with pytest.raises(ValueError):
        # slack below two zones of 4 blocks each
        ZonedFtl(sim, flash, ecc, config=FtlConfig(op_ratio=0.05), zone_blocks=4)


def test_registry_constructs_zoned_backend():
    sim = Simulator()
    flash = FlashArray(sim, geometry=GEO)
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=2048)))
    ftl = create_backend("zoned", sim, flash, ecc, config=CONFIG, zone_blocks=2)
    assert isinstance(ftl, ZonedFtl)
    with pytest.raises(ValueError):
        create_backend("hybrid", sim, flash, ecc)
    with pytest.raises(TypeError):
        create_backend("page", sim, flash, ecc, zone_blocks=2)


def test_stats_and_health_keys():
    sim, ftl = make_zoned()

    def flow():
        for lpn in range(8):
            yield from ftl.write(lpn, bytes([lpn]) * 8)
        yield from ftl.flush()

    drive(sim, flow())
    stats = ftl.stats()
    # the shared dashboard keys the page FTL also reports
    for key in ("host_reads", "host_writes", "host_pages_programmed",
                "gc_collections", "write_amplification", "free_blocks",
                "uncorrectable_reads", "scrub_refreshes", "wl_migrations"):
        assert key in stats
    health = ftl.health_stats()
    assert set(health) == {
        "available_spare", "bad_blocks", "gc_collections", "scrub_refreshes"
    }
    report = ftl.zone_report()
    assert report["zones"] == 12
    assert report["empty"] + report["open"] + report["full"] + report["offline"] == 12


# -- zone semantics ---------------------------------------------------------


def test_explicit_reset_drops_zone_data():
    sim, ftl = make_zoned()

    def flow():
        # fill one whole zone so it closes (FULL) and leaves the open slots
        for lpn in range(ftl.zone_pages):
            yield from ftl.write(lpn, b"z%d" % lpn)
        yield from ftl.flush()
        full = [z for z in range(ftl.zone_count)
                if ftl.zone_state(z) == ZoneState.FULL]
        if not full:
            # appends round-robin over two slots; force closure by writing
            # another zone's worth
            for lpn in range(ftl.zone_pages, 2 * ftl.zone_pages):
                yield from ftl.write(lpn, b"y%d" % lpn)
            yield from ftl.flush()
            full = [z for z in range(ftl.zone_count)
                    if ftl.zone_state(z) == ZoneState.FULL]
        assert full, "no zone filled"
        victim = full[0]
        lost = [
            lpn
            for block in ftl._zone_block_range(victim)
            for lpn in ftl.page_map.valid_lpns_in_block(block)
        ]
        assert lost, "full zone holds no live pages"
        yield from ftl.reset_zone(victim)
        assert ftl.zone_state(victim) == ZoneState.EMPTY
        assert ftl.write_pointer(victim) == 0
        for lpn in lost:
            assert (yield from ftl.read(lpn)) is None

    drive(sim, flow())
    assert ftl.zone_resets >= 1


def test_reset_refuses_open_zone():
    sim, ftl = make_zoned()

    def flow():
        yield from ftl.write(0, b"x")
        yield from ftl.flush()
        open_zones = [z for z in range(ftl.zone_count)
                      if ftl.zone_state(z) == ZoneState.OPEN]
        assert open_zones
        with pytest.raises(ValueError):
            yield from ftl.reset_zone(open_zones[0])

    drive(sim, flow())


def test_gc_reclaims_zones_under_overwrite_churn():
    sim, ftl = make_zoned()
    payload = b"c" * 64

    def flow():
        for _ in range(8):
            for lpn in range(ftl.logical_pages):
                yield from ftl.write(lpn, payload)
            yield from ftl.flush()
        # copy-forward preserved the final round everywhere
        for lpn in range(ftl.logical_pages):
            assert (yield from ftl.read(lpn)) == payload

    drive(sim, flow())
    assert ftl.gc_collections > 0
    assert ftl.gc_pages_relocated >= 0
    assert ftl.write_amplification() >= 1.0


def test_sustained_overwrite_at_full_logical_capacity():
    """The admission/stall design never deadlocks nor reports device-full
    while the collector can still reclaim."""
    sim, ftl = make_zoned()

    def flow():
        for rnd in range(12):
            for lpn in range(ftl.logical_pages):
                yield from ftl.write(lpn, bytes([rnd]) * 16)
            yield from ftl.flush()
        for lpn in range(ftl.logical_pages):
            assert (yield from ftl.read(lpn)) == bytes([11]) * 16

    drive(sim, flow())


def test_concurrent_writers_no_protocol_violation():
    """Appends from many processes: FlashArray raises on any out-of-order
    or reprogram, so finishing cleanly proves append-only discipline."""
    sim, ftl = make_zoned(max_open_zones=3)

    def writer(lpn):
        for rnd in range(4):
            yield from ftl.write(lpn, bytes([rnd]) * 8)

    def flow():
        procs = [sim.process(writer(lpn)) for lpn in range(ftl.logical_pages)]
        for proc in procs:
            yield proc
        yield from ftl.flush()

    drive(sim, flow())
    # every block's programmed prefix equals its NAND write pointer
    assert ftl.flash.stats.programs == ftl.host_pages_programmed + ftl.gc_pages_relocated


def test_grown_bad_block_takes_zone_offline():
    sim, ftl = make_zoned()

    def flow():
        for lpn in range(ftl.zone_pages):
            yield from ftl.write(lpn, b"fill")
        yield from ftl.flush()
        full = [z for z in range(ftl.zone_count)
                if ftl.zone_state(z) == ZoneState.FULL]
        if not full:
            for lpn in range(ftl.zone_pages, 2 * ftl.zone_pages):
                yield from ftl.write(lpn, b"more")
            yield from ftl.flush()
            full = [z for z in range(ftl.zone_count)
                    if ftl.zone_state(z) == ZoneState.FULL]
        victim = full[0]
        ftl.flash.mark_block_failed(victim * ftl.zone_blocks)
        yield from ftl.reset_zone(victim)
        assert ftl.zone_state(victim) == ZoneState.OFFLINE

    drive(sim, flow())
    assert ftl.zones_retired == 1
    assert ftl.health_stats()["bad_blocks"] == ftl.zone_blocks


def test_device_full_surfaces_as_logical_io_error():
    """When nothing is reclaimable the stall loop gives up with a
    device-full ``LogicalIOError`` instead of hanging; like the page FTL,
    the failed destage is recorded on the write buffer rather than killing
    the flusher."""
    geometry = FlashGeometry(
        channels=1, dies_per_channel=1, planes_per_die=1, blocks_per_plane=4,
        pages_per_block=4, page_size=512,
    )
    sim = Simulator(seed=3)
    flash = FlashArray(sim, geometry=geometry)
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=512)))
    ftl = ZonedFtl(sim, flash, ecc,
                   config=FtlConfig(op_ratio=0.5, write_buffer_pages=2),
                   zone_blocks=1, max_open_zones=1)

    def flow():
        # half the pages are logical; overwrite far beyond physical space
        # while disabling reclamation by retiring zones via erase failures
        for block in range(geometry.blocks):
            flash.mark_block_failed(block)
        for rnd in range(geometry.pages * 4):
            yield from ftl.write(rnd % ftl.logical_pages, b"x")
            yield from ftl.flush()

    drive(sim, flow())
    assert ftl.write_buffer.failures, "device full never surfaced"
    lpn, exc = ftl.write_buffer.failures[0]
    assert isinstance(exc, LogicalIOError)
    assert "device full" in str(exc)


# -- properties -------------------------------------------------------------

PGEO = FlashGeometry(
    channels=2, dies_per_channel=1, planes_per_die=1, blocks_per_plane=6,
    pages_per_block=4, page_size=512,
)
PCONF = FtlConfig(op_ratio=0.34, write_buffer_pages=4)
# 12 blocks / 2 per zone = 6 zones of 8 pages; int(48 * (1 - 0.34)) = 31
PLOGICAL = int((12 // 2) * (2 * 4) * (1 - 0.34))


def make_property_ftl():
    sim = Simulator(seed=1)
    flash = FlashArray(sim, geometry=PGEO, error_model=BitErrorModel(rber0=1e-9))
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=512)))
    ftl = ZonedFtl(sim, flash, ecc, config=PCONF, zone_blocks=2, max_open_zones=2)
    return sim, ftl


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, PLOGICAL - 1),
                  st.binary(min_size=1, max_size=16)),
        st.tuples(st.just("read"), st.integers(0, PLOGICAL - 1), st.just(b"")),
        st.tuples(st.just("trim"), st.integers(0, PLOGICAL - 1), st.just(b"")),
        st.tuples(st.just("flush"), st.just(0), st.just(b"")),
        st.tuples(st.just("reset"), st.integers(0, 100), st.just(b"")),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_zoned_agrees_with_dict_oracle_across_resets(ops):
    """read-after-write across resets + copy-forward preserves live data.

    Explicit resets drop exactly the victim zone's live pages from the
    oracle; everything else — including pages GC relocated in between —
    must read back byte-identical.
    """
    sim, ftl = make_property_ftl()
    oracle: dict[int, bytes] = {}
    mismatches: list[tuple] = []

    def resettable_zone(index: int):
        candidates = [
            z for z in range(ftl.zone_count)
            if ftl.zone_state(z) == ZoneState.FULL
            and z not in ftl._reclaiming
            and all(z not in zones for zones in ftl._open.values())
        ]
        return candidates[index % len(candidates)] if candidates else None

    def driver():
        for op, arg, payload in ops:
            if op == "write":
                yield from ftl.write(arg, payload)
                oracle[arg] = payload
            elif op == "read":
                data = yield from ftl.read(arg)
                expected = oracle.get(arg)
                if data != expected:
                    mismatches.append((arg, data, expected))
            elif op == "trim":
                yield from ftl.trim([arg])
                oracle.pop(arg, None)
            elif op == "flush":
                yield from ftl.flush()
            else:
                zone = resettable_zone(arg)
                if zone is None:
                    continue
                dropped = [
                    lpn
                    for block in ftl._zone_block_range(zone)
                    for lpn in ftl.page_map.valid_lpns_in_block(block)
                ]
                yield from ftl.reset_zone(zone)
                for lpn in dropped:
                    oracle.pop(lpn, None)
        yield from ftl.flush()
        for lpn in range(ftl.logical_pages):
            data = yield from ftl.read(lpn)
            expected = oracle.get(lpn)
            if data != expected:
                mismatches.append((lpn, data, expected))

    sim.run(sim.process(driver()))
    assert mismatches == []


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_write_pointer_monotone_between_resets(ops):
    """A zone's write pointer never decreases except through a reset
    (host-initiated or GC's post-collection erase)."""
    sim, ftl = make_property_ftl()
    violations: list[tuple] = []

    def snapshot():
        return ([ftl.write_pointer(z) for z in range(ftl.zone_count)],
                ftl.zone_resets + ftl.zones_retired)

    def driver():
        prev_wp, prev_resets = snapshot()
        for op, arg, payload in ops:
            if op == "write":
                yield from ftl.write(arg, payload)
            elif op == "read":
                try:
                    yield from ftl.read(arg)
                except LogicalIOError:
                    pass
            elif op == "trim":
                yield from ftl.trim([arg])
            elif op == "flush":
                yield from ftl.flush()
            else:
                candidates = [
                    z for z in range(ftl.zone_count)
                    if ftl.zone_state(z) == ZoneState.FULL
                    and z not in ftl._reclaiming
                    and all(z not in zones for zones in ftl._open.values())
                ]
                if candidates:
                    yield from ftl.reset_zone(candidates[arg % len(candidates)])
            wp, resets = snapshot()
            for zone in range(ftl.zone_count):
                if wp[zone] < prev_wp[zone] and resets == prev_resets:
                    violations.append((zone, prev_wp[zone], wp[zone]))
            prev_wp, prev_resets = wp, resets

    sim.run(sim.process(driver()))
    assert violations == []


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16), rounds=st.integers(2, 6))
def test_copy_forward_preserves_live_data_under_churn(seed, rounds):
    """Force collections with overwrite churn; every live page survives."""
    sim = Simulator(seed=seed)
    flash = FlashArray(sim, geometry=PGEO, error_model=BitErrorModel(rber0=1e-9))
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=512)))
    ftl = ZonedFtl(sim, flash, ecc, config=PCONF, zone_blocks=2, max_open_zones=2)
    survivors: list = []

    def driver():
        for rnd in range(rounds):
            for lpn in range(ftl.logical_pages):
                yield from ftl.write(lpn, bytes([rnd, lpn % 251]))
        yield from ftl.flush()
        for lpn in range(ftl.logical_pages):
            survivors.append((yield from ftl.read(lpn)))

    sim.run(sim.process(driver()))
    assert survivors == [
        bytes([rounds - 1, lpn % 251]) for lpn in range(ftl.logical_pages)
    ]
