"""In-situ executables operating on objects.

``objscan PATTERN KEY...`` greps a set of *objects* (by key) inside the
drive — the "in-situ processing AND object-oriented at the same time"
combination the paper sketches.  The object namespace is just a prefix
convention over the device filesystem, so the standard streaming machinery
applies unchanged.
"""

from __future__ import annotations

from typing import Generator

from repro.analysis.calibration import CYCLES_PER_BYTE
from repro.apps.base import charge
from repro.isos.loader import ExecContext, ExitStatus
from repro.objstore.store import OBJECT_PREFIX

__all__ = ["ObjScanApp"]

# objscan costs what grep costs: it is a pattern scan over object payloads
CYCLES_PER_BYTE.setdefault("objscan", dict(CYCLES_PER_BYTE["grep"]))


class ObjScanApp:
    """``objscan PATTERN KEY [KEY...]`` — match count per object."""

    name = "objscan"

    def run(self, ctx: ExecContext) -> Generator:
        if len(ctx.args) < 2:
            return ExitStatus(code=2, stdout=b"usage: objscan PATTERN KEY...")
        pattern = ctx.args[0].encode()
        results: list[str] = []
        total = 0
        for key in ctx.args[1:]:
            path = OBJECT_PREFIX + key
            if not ctx.fs.exists(path):
                return ExitStatus(code=1, stdout=f"no such object: {key}".encode())
            matches = 0
            carry = b""
            stream = ctx.stream_pages(path)
            while not stream.exhausted:
                chunk, take = yield from stream.next_page()
                yield from charge(ctx, self.name, take)
                if chunk is None:
                    continue
                data = carry + chunk
                matches += data.count(pattern)
                # avoid double counting across the seam: keep a pattern-sized tail
                carry = data[-(len(pattern) - 1):] if len(pattern) > 1 else b""
                matches -= carry.count(pattern)
            results.append(f"{key}:{matches}")
            total += matches
        return ExitStatus(
            code=0 if total else 1,
            stdout=" ".join(results).encode(),
            detail={"total_matches": total, "objects": len(ctx.args) - 1},
        )
