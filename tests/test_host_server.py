"""Unit tests for the host server and in-situ client error paths."""

import pytest

from repro.cluster import StorageNode
from repro.host import HostServer, InSituClient
from repro.host.insitu import InSituError
from repro.proto import QueryKind
from repro.sim import Simulator
from repro.ssd import CompStorSSD, ConventionalSSD
from repro.ssd.conventional import small_geometry

CAPACITY = 16 * 1024 * 1024


def test_host_describe_matches_table4():
    sim = Simulator()
    host = HostServer(sim)
    info = host.describe()
    assert "E5-2620 v4" in info["cpu"]
    assert info["memory_gib"] == 32
    assert info["mounted"] is False


def test_host_requires_mount_before_os():
    sim = Simulator()
    host = HostServer(sim)
    with pytest.raises(RuntimeError, match="mount"):
        host.require_os()


def test_host_mount_builds_fs_over_nvme():
    sim = Simulator()
    ssd = ConventionalSSD(sim, geometry=small_geometry(CAPACITY))
    host = HostServer(sim)
    os_ = host.mount(ssd.controller)
    assert host.require_os() is os_
    assert os_.isa == "xeon"
    assert host.fs.page_size == ssd.ftl.page_size

    def flow():
        yield from host.fs.write_file("host.txt", b"via nvme")
        return (yield from host.fs.read_file("host.txt"))

    assert sim.run(sim.process(flow())) == b"via nvme"
    # the data really crossed the NVMe front-end
    assert ssd.controller.commands_executed > 0


def test_client_unknown_device_error():
    sim = Simulator()
    client = InSituClient(sim)
    with pytest.raises(InSituError, match="unknown device"):
        sim.run(sim.process(client.run("ghost", "ls")))


def test_client_query_unknown_device():
    sim = Simulator()
    client = InSituClient(sim)
    with pytest.raises(InSituError, match="unknown device"):
        sim.run(sim.process(client.query("ghost", QueryKind.PING)))


def test_client_devices_listing():
    sim = Simulator()
    client = InSituClient(sim)
    assert client.devices() == []
    a = CompStorSSD(sim, name="alpha", geometry=small_geometry(CAPACITY))
    b = CompStorSSD(sim, name="beta", geometry=small_geometry(CAPACITY))
    client.attach(a.controller)
    client.attach(b.controller)
    assert client.devices() == ["alpha", "beta"]


def test_status_all_covers_every_device():
    node = StorageNode.build(devices=3, device_capacity=CAPACITY)

    def flow():
        return (yield from node.client.status_all())

    statuses = node.sim.run(node.sim.process(flow()))
    assert sorted(statuses) == ["compstor0", "compstor1", "compstor2"]
    assert all(s.device == name for name, s in statuses.items())


def test_client_counts_traffic():
    node = StorageNode.build(devices=1, device_capacity=CAPACITY)
    ssd = node.compstors[0]
    node.sim.run(node.sim.process(ssd.fs.write_file("f.txt", b"fox\n")))

    def flow():
        yield from node.client.run("compstor0", "grep fox f.txt")
        yield from node.client.status("compstor0")

    node.sim.run(node.sim.process(flow()))
    assert node.client.minions_sent == 1
    assert node.client.queries_sent == 1


def test_queue_pair_validation():
    from repro.nvme.queues import QueuePair

    with pytest.raises(ValueError):
        QueuePair(Simulator(), depth=0)


def test_host_fs_delete_and_flush_over_nvme():
    """TRIM and FLUSH flow through the NVMe front-end from the host FS."""
    sim = Simulator()
    ssd = ConventionalSSD(sim, geometry=small_geometry(CAPACITY))
    host = HostServer(sim)
    host.mount(ssd.controller)

    def flow():
        yield from host.fs.write_file("temp.dat", b"z" * 5000)
        yield from host.fs.device.flush()
        yield from host.fs.delete("temp.dat")

    sim.run(sim.process(flow()))
    assert ssd.ftl.trims > 0  # the delete became DSM/TRIM commands
    assert not host.fs.exists("temp.dat")
