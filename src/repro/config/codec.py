"""Canonical serialisation for :class:`~repro.config.schema.ScenarioConfig`.

One scenario, one JSON string, one digest:

- :func:`to_dict` / :func:`from_dict` walk the typed dataclass tree, so the
  round-trip is lossless and *validated* — unknown keys and wrong types are
  loud errors, not silently-absorbed kwargs;
- :func:`canonical_json` is the same canonical form the parallel runner
  hashes (sorted keys, no whitespace, NaN rejected), so a scenario embedded
  in a :class:`~repro.parallel.jobs.JobSpec`'s kwargs contributes exactly
  its canonical bytes to the cache key;
- :func:`config_digest` is the sha256 hex printed in every scorecard
  header: paste it back through ``python -m repro config show`` and you get
  the scenario that produced the run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import types
import typing
from typing import Any, Mapping

from repro.config.schema import ScenarioConfig

__all__ = [
    "ConfigError",
    "canonical_json",
    "config_digest",
    "flatten",
    "from_dict",
    "scenario_from_dict",
    "to_dict",
]


class ConfigError(ValueError):
    """A scenario dict/override does not fit the typed schema."""


def canonical_json(value: Any) -> str:
    """Sorted keys, no whitespace, NaN rejected — one serialisation per value."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), allow_nan=False)


def to_dict(config: Any) -> dict:
    """A scenario (or any schema node) as a plain JSON-encodable dict."""
    return _encode(config)


def _encode(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # ``omit_if_none`` fields (sections added after digest goldens were
        # pinned) stay out of the canonical JSON while unset, so old
        # scenarios keep their digests byte-for-byte.
        return {
            f.name: _encode(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if not (
                getattr(value, f.name) is None and f.metadata.get("omit_if_none")
            )
        }
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigError(f"unencodable config value: {value!r}")


def from_dict(cls: type, data: Mapping[str, Any], path: str = "") -> Any:
    """Rebuild a schema dataclass from a plain dict, validating as it goes.

    Missing keys take the schema defaults; unknown keys raise
    :class:`ConfigError` naming the valid fields (the same error surface
    as ``--set`` overrides).
    """
    return _decode(cls, dict(data), path or cls.__name__)


def scenario_from_dict(data: Mapping[str, Any]) -> ScenarioConfig:
    return from_dict(ScenarioConfig, data, path="scenario")


def config_digest(config: Any) -> str:
    """sha256 over the canonical JSON of the scenario (its identity)."""
    return hashlib.sha256(canonical_json(to_dict(config)).encode()).hexdigest()


# -- typed decode -----------------------------------------------------------


def _type_hints(cls: type) -> dict[str, Any]:
    return typing.get_type_hints(cls)


def _decode(tp: Any, data: Any, path: str) -> Any:
    origin = typing.get_origin(tp)
    if origin in (typing.Union, types.UnionType):
        args = typing.get_args(tp)
        if data is None:
            if type(None) in args:
                return None
            raise ConfigError(f"{path}: null is not allowed")
        concrete = [a for a in args if a is not type(None)]
        if len(concrete) != 1:
            raise ConfigError(f"{path}: unsupported union type {tp}")
        return _decode(concrete[0], data, path)
    if dataclasses.is_dataclass(tp):
        if not isinstance(data, Mapping):
            raise ConfigError(f"{path}: expected an object, got {data!r}")
        names = [f.name for f in dataclasses.fields(tp)]
        unknown = sorted(set(data) - set(names))
        if unknown:
            raise ConfigError(
                f"{path}: unknown key(s) {', '.join(unknown)}; "
                f"valid keys: {', '.join(names)}"
            )
        hints = _type_hints(tp)
        kwargs = {
            name: _decode(hints[name], data[name], f"{path}.{name}")
            for name in names
            if name in data
        }
        try:
            return tp(**kwargs)
        except ValueError as exc:
            raise ConfigError(f"{path}: {exc}") from exc
    if origin is tuple:
        args = typing.get_args(tp)
        if len(args) != 2 or args[1] is not Ellipsis:
            raise ConfigError(f"{path}: unsupported tuple type {tp}")
        if not isinstance(data, (list, tuple)):
            raise ConfigError(f"{path}: expected a list, got {data!r}")
        return tuple(
            _decode(args[0], item, f"{path}[{i}]") for i, item in enumerate(data)
        )
    if tp is float:
        if isinstance(data, bool) or not isinstance(data, (int, float)):
            raise ConfigError(f"{path}: expected a number, got {data!r}")
        return float(data)
    if tp is int:
        if isinstance(data, bool) or not isinstance(data, int):
            raise ConfigError(f"{path}: expected an integer, got {data!r}")
        return data
    if tp is bool:
        if not isinstance(data, bool):
            raise ConfigError(f"{path}: expected a boolean, got {data!r}")
        return data
    if tp is str:
        if not isinstance(data, str):
            raise ConfigError(f"{path}: expected a string, got {data!r}")
        return data
    raise ConfigError(f"{path}: unsupported field type {tp}")


# -- flat views -------------------------------------------------------------


def flatten(config: Any, prefix: str = "") -> dict[str, Any]:
    """Dotted-path -> leaf value, the view ``config show --flat`` and
    ``config diff`` operate on.  Structured tuples (fault events) are
    rendered as their canonical JSON so they stay one comparable line."""
    out: dict[str, Any] = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        key = f"{prefix}{f.name}"
        if value is None and f.metadata.get("omit_if_none"):
            continue
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            out.update(flatten(value, prefix=f"{key}."))
        elif isinstance(value, tuple) and any(
            dataclasses.is_dataclass(v) for v in value
        ):
            out[key] = canonical_json(_encode(value))
        else:
            out[key] = value
    return out
