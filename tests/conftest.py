"""Shared test configuration.

Hypothesis runs derandomized so the whole suite — including the
property-based tests — is reproducible run to run, matching the simulator's
own determinism guarantees.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
