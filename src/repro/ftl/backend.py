"""Pluggable translation backends: the interface and the registry.

The device stack (``repro.ssd``) historically hard-wired the page-mapped
:class:`~repro.ftl.ftl.FlashTranslationLayer`.  Everything above the FTL —
the NVMe controller, the ISPS flash access driver, the staging and objstore
paths — only ever used a narrow surface of it, captured here as the
:class:`TranslationBackend` protocol:

- logical page I/O: ``read`` / ``write`` / ``trim`` / ``flush`` (simulation
  generators);
- capacity: ``logical_pages`` / ``page_size`` / ``logical_capacity_bytes``;
- accounting: ``host_reads`` / ``host_writes`` / ``uncorrectable_reads``,
  ``write_amplification()`` and the free-form ``stats()`` dict;
- health: ``health_stats()`` — the backend-agnostic spare/bad/GC/scrub
  counters SMART and fleet telemetry aggregate (previously read off
  concrete page-FTL attributes, which made any other backend silently
  report zeros);
- fault hooks: the raw ``flash`` array stays reachable, so media-level
  fault injection (``mark_block_failed``, error-model tweaks) works against
  any backend.

Backends register here by name; :func:`create_backend` is the single
construction funnel the device assembly uses.  The ``page`` backend is the
default and its construction path is byte-identical to the historical
direct instantiation, so golden schedules and preset digests are unchanged
unless a scenario explicitly selects another backend.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Generator,
    Protocol,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.ecc import EccEngine
    from repro.flash.package import FlashArray
    from repro.ftl.ftl import FtlConfig
    from repro.obs.metrics import MetricsRegistry
    from repro.sim import Simulator, Tracer

__all__ = [
    "DEVICE_BACKENDS",
    "TranslationBackend",
    "backend_factory",
    "create_backend",
    "register_backend",
]

#: Backend names a scenario's ``device.backend`` knob may select.
DEVICE_BACKENDS: tuple[str, ...] = ("page", "zoned")


@runtime_checkable
class TranslationBackend(Protocol):
    """The contract every translation backend satisfies.

    A backend is a logical page device over a :class:`~repro.flash.package.
    FlashArray` plus :class:`~repro.ecc.EccEngine`; all I/O methods are
    simulation generators.  ``flash`` stays exposed deliberately: media
    models, wear counters, and fault hooks live there and are
    backend-independent.
    """

    name: str
    logical_pages: int
    host_reads: int
    host_writes: int
    uncorrectable_reads: int

    @property
    def page_size(self) -> int: ...

    @property
    def logical_capacity_bytes(self) -> int: ...

    def read(self, lpn: int) -> Generator: ...

    def write(self, lpn: int, data: bytes | None) -> Generator: ...

    def trim(self, lpns: "list[int] | range") -> Generator: ...

    def flush(self) -> Generator: ...

    def write_amplification(self) -> float: ...

    def stats(self) -> dict[str, float]: ...

    def health_stats(self) -> dict[str, float]: ...


#: ``factory(sim, flash, ecc, config=..., name=..., tracer=..., metrics=...,
#: **backend_knobs) -> TranslationBackend``
BackendFactory = Callable[..., "TranslationBackend"]

_REGISTRY: dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or replace) a backend constructor under ``name``."""
    _REGISTRY[name] = factory


def _page_backend(
    sim: "Simulator",
    flash: "FlashArray",
    ecc: "EccEngine",
    *,
    config: "FtlConfig | None" = None,
    name: str = "ftl",
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> "TranslationBackend":
    from repro.ftl.ftl import FlashTranslationLayer

    return FlashTranslationLayer(
        sim, flash, ecc, config=config, name=name, tracer=tracer, metrics=metrics
    )


def _zoned_backend(
    sim: "Simulator",
    flash: "FlashArray",
    ecc: "EccEngine",
    *,
    config: "FtlConfig | None" = None,
    name: str = "ftl",
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
    zone_blocks: int = 4,
    max_open_zones: int = 4,
) -> "TranslationBackend":
    from repro.ftl.zoned import ZonedFtl

    return ZonedFtl(
        sim,
        flash,
        ecc,
        config=config,
        zone_blocks=zone_blocks,
        max_open_zones=max_open_zones,
        name=name,
        tracer=tracer,
        metrics=metrics,
    )


def _ensure_defaults() -> None:
    # Lazy registration keeps this module import-cheap and cycle-free: the
    # concrete backends import back into repro.ftl.
    if "page" not in _REGISTRY:
        _REGISTRY["page"] = _page_backend
    if "zoned" not in _REGISTRY:
        _REGISTRY["zoned"] = _zoned_backend


def backend_factory(name: str) -> BackendFactory:
    """The registered constructor for ``name`` (raises on unknown)."""
    _ensure_defaults()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown device backend {name!r}; use {sorted(_REGISTRY)}"
        ) from None


def create_backend(
    backend: str,
    sim: "Simulator",
    flash: "FlashArray",
    ecc: "EccEngine",
    *,
    config: "FtlConfig | None" = None,
    name: str = "ftl",
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
    **knobs: Any,
) -> "TranslationBackend":
    """Build the named backend over an existing flash array + ECC engine.

    ``knobs`` are backend-specific (the zoned backend takes ``zone_blocks``
    and ``max_open_zones``); the page backend takes none, so passing knobs
    with ``backend="page"`` is an error rather than a silent ignore.
    """
    factory = backend_factory(backend)
    return factory(
        sim, flash, ecc, config=config, name=name, tracer=tracer,
        metrics=metrics, **knobs,
    )
