#!/usr/bin/env python3
"""Object storage + in-situ processing, combined.

The paper (Section II) positions in-situ processing as *orthogonal* to
object-oriented storage (Seagate Kinetic): "a storage could be either
in-situ processing or object-oriented or both at the same time".  This
example demonstrates *both*: a Kinetic-style key-value store living on a
CompStor, with versioned PUT/GET/DELETE and key-range queries, plus an
in-situ ``objscan`` executable that searches objects without moving them.

Run:  python examples/object_storage.py
"""

from repro.cluster import StorageNode
from repro.objstore import ObjScanApp, ObjectStore
from repro.objstore.store import VersionMismatchError
from repro.workloads import BookCorpus, CorpusSpec


def main() -> None:
    node = StorageNode.build(devices=1, device_capacity=32 * 1024 * 1024)
    sim = node.sim
    store = ObjectStore(node.compstors[0].fs)
    node.compstors[0].isps.os.install_executable(ObjScanApp())

    books = BookCorpus(CorpusSpec(files=4, mean_file_bytes=48 * 1024)).generate()

    def session():
        # PUT the corpus as objects with tags
        for book in books:
            meta = yield from store.put(
                book.name.replace(".txt", ""),
                book.plain,
                tags={"compression": book.compression, "kind": "book"},
            )
            print(f"PUT {meta.key}: {meta.size} B, version {meta.version}, "
                  f"sha1 {meta.sha1[:10]}...")

        # ordered key-range query (the Kinetic API)
        keys = store.get_key_range(start="book0001", end="book0003")
        print(f"\nkey range [book0001..book0003]: {keys}")

        # compare-and-swap: concurrent-writer protection
        yield from store.put("book0000", b"edited!", expect_version=1)
        try:
            yield from store.put("book0000", b"stale edit", expect_version=1)
        except VersionMismatchError as exc:
            print(f"CAS protected us: {exc}")

        # in-situ scan over objects: computation goes to the data
        keys = " ".join(store.get_key_range(start="book0001"))
        response = yield from node.client.run("compstor0", f"objscan xylophone {keys}")
        print(f"\nin-situ objscan: {response.stdout.decode()}")
        print(f"   ({response.detail['total_matches']} total matches across "
              f"{response.detail['objects']} objects, "
              f"{response.execution_seconds * 1e3:.1f} ms inside the drive)")

        # durability: persist the object index, reboot, reload
        yield from store.persist()
        reborn = ObjectStore(store.fs)
        yield from reborn.load()
        print(f"\nafter 'reboot': {len(reborn.get_key_range())} objects recovered, "
              f"{reborn.total_bytes()} bytes")

    sim.run(sim.process(session()))


if __name__ == "__main__":
    main()
