"""Paper Table I: comparison of in-storage computation systems.

The capability matrix is data, not prose, so the bench that regenerates
Table I can assert its one substantive claim: CompStor is the only system
with a prototype *and* dynamic task loading *and* a programming library
*and* OS-level flexibility.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SYSTEMS", "SystemCapabilities", "table1_rows"]


@dataclass(frozen=True, slots=True)
class SystemCapabilities:
    """One row of Table I."""

    system: str
    reference: str
    prototype: str
    dynamic_task_loading: bool
    programming_library: bool
    os_level_flexibility: bool

    @property
    def all_features(self) -> bool:
        return (
            self.dynamic_task_loading
            and self.programming_library
            and self.os_level_flexibility
        )


SYSTEMS: tuple[SystemCapabilities, ...] = (
    SystemCapabilities(
        system="BlueDBM (Jun)",
        reference="[13]",
        prototype="FPGA based SSD / FPGA accelerator",
        dynamic_task_loading=False,
        programming_library=True,
        os_level_flexibility=False,
    ),
    SystemCapabilities(
        system="Active SSD (Abbani)",
        reference="[23]",
        prototype="FPGA based SSD / soft microprocessor",
        dynamic_task_loading=False,
        programming_library=False,
        os_level_flexibility=False,
    ),
    SystemCapabilities(
        system="Smart SSD (Kang)",
        reference="[17]",
        prototype="OTS SATA SSD / 2 ARM (unknown)",
        dynamic_task_loading=False,
        programming_library=True,
        os_level_flexibility=False,
    ),
    SystemCapabilities(
        system="In-storage scan/join (Kim)",
        reference="[15]",
        prototype="Simulation model / ARM A9 (sim)",
        dynamic_task_loading=False,
        programming_library=False,
        os_level_flexibility=False,
    ),
    SystemCapabilities(
        system="Active Flash (Tiwari)",
        reference="[16]",
        prototype="Model / ARM A9 (model)",
        dynamic_task_loading=False,
        programming_library=False,
        os_level_flexibility=False,
    ),
    SystemCapabilities(
        system="Biscuit (Gu)",
        reference="[19]",
        prototype="OTS NVMe SSD / ARM R7",
        dynamic_task_loading=True,
        programming_library=True,
        os_level_flexibility=False,
    ),
    SystemCapabilities(
        system="HRL-style NDP (Gao)",
        reference="[20]",
        prototype="Simulation model / ARM A7 (model)",
        dynamic_task_loading=False,
        programming_library=False,
        os_level_flexibility=False,
    ),
    SystemCapabilities(
        system="CompStor",
        reference="(this work)",
        prototype="24TB NVMe SSD / quad-core ARM A53",
        dynamic_task_loading=True,
        programming_library=True,
        os_level_flexibility=True,
    ),
)


def table1_rows() -> list[list[str]]:
    """Table I as printable rows."""

    def mark(flag: bool) -> str:
        return "yes" if flag else "no"

    return [
        [
            s.system,
            s.prototype,
            mark(s.dynamic_task_loading),
            mark(s.programming_library),
            mark(s.os_level_flexibility),
        ]
        for s in SYSTEMS
    ]
