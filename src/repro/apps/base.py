"""Shared application machinery: streaming scans with cycle accounting."""

from __future__ import annotations

from typing import Generator

from repro.analysis.calibration import cycles_for
from repro.isos.loader import ExecContext, ExitStatus

__all__ = ["StreamingApp", "UsageError", "charge"]


class UsageError(Exception):
    """Bad command-line arguments (maps to exit code 2, like coreutils)."""


def charge(ctx: ExecContext, app: str, nbytes: int) -> Generator:
    """Charge the calibrated cycle cost for processing ``nbytes``."""
    yield from ctx.compute(cycles_for(app, ctx.isa, nbytes))
    return None


class StreamingApp:
    """Base for apps that scan one input file page by page.

    Subclasses set ``name``, override :meth:`begin`, :meth:`consume` and
    :meth:`finish`.  ``consume`` receives ``(chunk_or_None, valid_len)`` per
    page *after* the cycle cost has been charged, so timing holds in both
    functional and analytic mode.

    IO and compute overlap with a readahead depth of one page (as OS
    readahead gives a real scan): while the CPU chews page N, page N+1 is
    already in flight from flash — so a scan's wall time approaches
    ``max(IO, compute)`` instead of their sum.
    """

    name = "streaming-app"

    def input_file(self, ctx: ExecContext) -> str:
        """Which positional argument is the input (default: the last)."""
        if not ctx.args:
            raise UsageError(f"{self.name}: missing input file")
        return ctx.args[-1]

    def run(self, ctx: ExecContext) -> Generator:
        try:
            path = self.input_file(ctx)
        except UsageError as exc:
            return ExitStatus(code=2, stdout=str(exc).encode())
        if not ctx.fs.exists(path):
            return ExitStatus(code=1, stdout=f"{self.name}: {path}: no such file".encode())
        self.begin(ctx)
        stream = ctx.stream_pages(path)
        total = 0
        pending = None
        ra_name = self.name + ".ra"
        if not stream.exhausted:
            pending = ctx.sim.process(stream.next_page(), name=ra_name)
        while pending is not None:
            chunk, take = yield pending
            pending = (
                ctx.sim.process(stream.next_page(), name=ra_name)
                if not stream.exhausted
                else None
            )
            # charge() inlined: one less generator frame for every event of
            # every page's compute slice to bubble through.
            yield from ctx.compute(cycles_for(self.name, ctx.isa, take))
            self.consume(ctx, chunk, take)
            total += take
        status = yield from self.finish(ctx, path, total)
        return status

    # -- hooks -------------------------------------------------------------
    def begin(self, ctx: ExecContext) -> None:  # pragma: no cover - trivial default
        pass

    def consume(self, ctx: ExecContext, chunk: bytes | None, take: int) -> None:
        raise NotImplementedError

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover
