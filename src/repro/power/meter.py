"""The energy meter.

Two kinds of power are tracked:

- **active energy**: charged event-by-event by components through their
  ``energy_sink`` callback (flash ops, CPU busy time, PCIe transfers, ECC);
- **static power**: components registered with a constant wattage (package
  idle, platform, DRAM, controller logic) integrate over wall-clock
  simulation time.

The paper computes energy as average power x elapsed time from a wall
meter; :meth:`PowerMeter.window` reproduces exactly that measurement
protocol: snapshot, run the workload, diff.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.sim import Simulator

__all__ = ["EnergyReport", "PowerMeter"]


@dataclass(frozen=True, slots=True)
class EnergyReport:
    """Energy measured over a window."""

    seconds: float
    active_j: dict[str, float]
    static_j: dict[str, float]

    @property
    def total_j(self) -> float:
        return sum(self.active_j.values()) + sum(self.static_j.values())

    @property
    def average_power_w(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.total_j / self.seconds

    def joules_per_gb(self, nbytes: float) -> float:
        """The paper's Fig. 8 metric (input-normalised energy)."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        return self.total_j / (nbytes / 1e9)

    def subset(self, components: Iterable[str]) -> float:
        """Total energy of the named components (prefix match)."""
        keys = tuple(components)
        total = 0.0
        for name, joules in list(self.active_j.items()) + list(self.static_j.items()):
            if any(name.startswith(k) for k in keys):
                total += joules
        return total


class PowerMeter:
    """Accumulates active energy and integrates static power."""

    def __init__(self, sim: Simulator, metrics: MetricsRegistry | None = None):
        self.sim = sim
        self._active: defaultdict[str, float] = defaultdict(float)
        self._static: dict[str, float] = {}
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._m_energy = self.metrics.counter(
            "power.energy_joules", "active energy charged per component"
        )

    # -- wiring -----------------------------------------------------------
    def sink(self, component: str, joules: float) -> None:
        """``energy_sink`` callback handed to components."""
        if joules < 0:
            raise ValueError("joules must be non-negative")
        self._active[component] += joules
        if self.metrics.enabled:
            self._m_energy.inc(joules, component=component)

    def register_static(self, component: str, watts: float) -> None:
        """Declare a constant power draw (idle/uncore/platform)."""
        if watts < 0:
            raise ValueError("watts must be non-negative")
        if component in self._static:
            raise ValueError(f"static component {component!r} already registered")
        self._static[component] = watts

    def static_components(self) -> dict[str, float]:
        return dict(self._static)

    # -- measurement -----------------------------------------------------------
    def active_energy(self, component: str | None = None) -> float:
        if component is None:
            return sum(self._active.values())
        return self._active.get(component, 0.0)

    def snapshot(self) -> tuple[float, dict[str, float]]:
        """Opaque mark for :meth:`window`."""
        return self.sim.now, dict(self._active)

    def window(self, mark: tuple[float, dict[str, float]]) -> EnergyReport:
        """Energy between ``mark`` (from :meth:`snapshot`) and now."""
        t0, active0 = mark
        seconds = self.sim.now - t0
        if seconds < 0:
            raise ValueError("mark is in the future")
        active = {
            name: joules - active0.get(name, 0.0)
            for name, joules in self._active.items()
            if joules - active0.get(name, 0.0) > 0
        }
        static = {name: watts * seconds for name, watts in self._static.items()}
        return EnergyReport(seconds=seconds, active_j=active, static_j=static)
