"""The OS facade: spawn, wait, ps, telemetry.

:class:`EmbeddedOS` is used twice in the CompStor model: as the ISPS's
embedded Linux (over a :class:`~repro.isos.blockdev.FlashAccessDevice`) and
as the host's Ubuntu (over an NVMe block device).  Identical semantics on
both sides is the point — an executable does not know where it runs.
"""

from __future__ import annotations

from typing import Generator

from repro.cpu.core import CpuCluster
from repro.cpu.scheduler import RunQueue
from repro.isos.filesystem import ExtentFileSystem
from repro.isos.loader import ExecContext, Executable, ExecutableRegistry, ExitStatus
from repro.isos.process import OsProcess, ProcessState
from repro.isos.shell import split_pipeline, split_script
from repro.sim import Simulator, Tracer
from repro.sim.trace import NULL_TRACER

__all__ = ["EmbeddedOS"]


class EmbeddedOS:
    """Process management over a CPU cluster + filesystem + registry.

    Parameters
    ----------
    isa:
        Cost-table key propagated into every :class:`ExecContext`
        (``"arm-a53"`` for the ISPS, ``"xeon"`` for the host).
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: CpuCluster,
        fs: ExtentFileSystem,
        registry: ExecutableRegistry,
        isa: str,
        name: str = "os",
        quantum: float = 4e-3,
        spawn_latency: float = 300e-6,
        tracer: Tracer | None = None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.fs = fs
        self.registry = registry
        self.isa = isa
        self.name = name
        self.runq = RunQueue(sim, cluster, quantum=quantum)
        self.spawn_latency = spawn_latency
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.process_table: dict[int, OsProcess] = {}
        self.booted_at = sim.now

    # -- process lifecycle ---------------------------------------------------
    def spawn(self, command_line: str, priority: int = 0) -> OsProcess:
        """fork+exec a command line (may be a pipeline)."""
        stages = split_pipeline(command_line)  # validates syntax eagerly
        for argv in stages:
            self.registry.resolve(argv[0])  # fail fast on unknown binaries

        holder: list[OsProcess] = []

        def body() -> Generator:
            entry = holder[0]
            try:
                yield self.sim.timeout(self.spawn_latency)  # fork/exec/page-in
                stdin: bytes | None = None
                status = ExitStatus()
                for argv in stages:
                    exe = self.registry.instantiate(argv[0])
                    ctx = ExecContext(
                        self.sim,
                        self.fs,
                        self.runq,
                        isa=self.isa,
                        args=argv[1:],
                        stdin=stdin,
                        priority=priority,
                    )
                    status = yield from exe.run(ctx)
                    if not isinstance(status, ExitStatus):
                        raise TypeError(
                            f"{exe.name} returned {status!r}, expected ExitStatus"
                        )
                    if status.code != 0:
                        break  # pipeline aborts on failure (pipefail semantics)
                    stdin = status.stdout
            except BaseException as exc:
                entry.state = ProcessState.FAILED
                entry.error = exc
                entry.finished_at = self.sim.now
                raise
            entry.state = ProcessState.EXITED
            entry.exit_status = status
            entry.finished_at = self.sim.now
            return status

        sim_proc = self.sim.process(body(), name=f"{self.name}.{stages[0][0]}")
        entry = OsProcess(command=command_line, sim_process=sim_proc, started_at=self.sim.now)
        holder.append(entry)
        self.process_table[entry.pid] = entry
        self.tracer.emit(self.sim.now, self.name, "os.spawn", pid=entry.pid, command=command_line)
        return entry

    def wait(self, process: OsProcess) -> Generator:
        """Block until a process exits; returns its :class:`ExitStatus`."""
        status = yield process.sim_process
        return status

    def kill(self, pid: int, reason: str = "killed") -> bool:
        """SIGKILL: interrupt a running process.  Returns False if the pid
        is unknown or already dead.  The victim's waiters see the
        :class:`~repro.sim.core.Interrupt` raised out of :meth:`wait`."""
        entry = self.process_table.get(pid)
        if entry is None or not entry.alive:
            return False
        entry.sim_process.interrupt(reason)
        self.tracer.emit(self.sim.now, self.name, "os.kill", pid=pid, reason=reason)
        return True

    def run(self, command_line: str, priority: int = 0) -> Generator:
        """spawn + wait convenience; returns ``(ExitStatus, OsProcess)``."""
        process = self.spawn(command_line, priority=priority)
        status = yield from self.wait(process)
        return status, process

    def run_script(self, script: str, priority: int = 0) -> Generator:
        """Execute a multi-line shell script sequentially (stop on failure)."""
        results = []
        for line in split_script(script):
            status, process = yield from self.run(line, priority=priority)
            results.append((line, status, process))
            if status.code != 0:
                break
        return results

    # -- introspection / telemetry ----------------------------------------------
    def ps(self) -> list[dict]:
        return [entry.summary() for entry in self.process_table.values()]

    def running_processes(self) -> int:
        return sum(1 for entry in self.process_table.values() if entry.alive)

    def uptime(self) -> float:
        return self.sim.now - self.booted_at

    def utilization(self) -> float:
        return self.cluster.utilization()

    def temperature_c(self) -> float:
        return self.cluster.temperature_c()

    def install_executable(self, executable: Executable) -> None:
        """Dynamic task loading entry point (wired to ISC_LOAD)."""
        self.registry.install(executable)
        self.tracer.emit(self.sim.now, self.name, "os.load", executable=executable.name)
